#include "service/persistence.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "service/query_engine.h"
#include "sketch/serialize.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDim = 512;

SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDim, 24, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDim, std::move(entries));
}

SketchStoreOptions SmallStoreOptions(const std::string& family = "wmh") {
  SketchStoreOptions opts;
  opts.family = family;
  opts.sketch.dimension = kDim;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  opts.num_shards = 8;
  return opts;
}

SketchStore MakePopulatedStore(size_t count,
                               const std::string& family = "wmh") {
  auto store = SketchStore::Make(SmallStoreOptions(family)).value();
  for (uint64_t i = 0; i < count; ++i) {
    EXPECT_TRUE(store.BuildAndInsert(i * 11, RandomVector(i)).ok());
  }
  return store;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// FNV-1a, mirroring the persistence trailer — used to hand-build legacy
// v1 files.
uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// The per-sketch *v1* WMH payload — same fields as today's v2 minus the
// engine byte. Legacy store files contain exactly these bytes; building
// them by hand keeps the legacy tests faithful to what v1 writers emitted.
std::string V1WmhPayload(const WmhSketch& wmh) {
  std::string blob;
  wire::AppendU32(&blob, 0x49505348);  // "IPSH"
  wire::AppendU8(&blob, 1);
  wire::AppendU8(&blob, 1);  // kWmh
  wire::AppendU64(&blob, wmh.seed);
  wire::AppendU64(&blob, wmh.L);
  wire::AppendU64(&blob, wmh.dimension);
  wire::AppendDouble(&blob, wmh.norm);
  wire::AppendU64(&blob, wmh.hashes.size());
  for (double h : wmh.hashes) wire::AppendDouble(&blob, h);
  wire::AppendU64(&blob, wmh.values.size());
  for (double v : wmh.values) wire::AppendDouble(&blob, v);
  return blob;
}

TEST(StorePersistenceTest, SaveLoadPreservesOptionsAndContents) {
  const auto store = MakePopulatedStore(60);
  const std::string path = TempPath("store_roundtrip.bin");
  ASSERT_TRUE(SaveSketchStore(store, path).ok());

  auto loaded = LoadSketchStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SketchStore& reloaded = loaded.value();

  EXPECT_EQ(reloaded.options().family, store.options().family);
  EXPECT_EQ(reloaded.options().num_shards, store.options().num_shards);
  // Resolved family options (including materialized defaults like WMH's L)
  // survive verbatim.
  EXPECT_EQ(reloaded.options().sketch, store.options().sketch);
  EXPECT_EQ(reloaded.size(), store.size());
  EXPECT_EQ(reloaded.Ids(), store.Ids());
  std::remove(path.c_str());
}

TEST(StorePersistenceTest, ReloadedEstimatesAreByteIdentical) {
  const auto store = MakePopulatedStore(60);
  const std::string path = TempPath("store_estimates.bin");
  ASSERT_TRUE(SaveSketchStore(store, path).ok());
  auto loaded = LoadSketchStore(path);
  ASSERT_TRUE(loaded.ok());

  QueryEngine before(&store);
  QueryEngine after(&loaded.value());
  const auto ids = store.Ids();
  Xoshiro256StarStar rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t a = ids[rng.NextBounded(ids.size())];
    const uint64_t b = ids[rng.NextBounded(ids.size())];
    const double x = before.EstimateInnerProduct(a, b).value();
    const double y = after.EstimateInnerProduct(a, b).value();
    // Exact double equality: serialization stores IEEE-754 bit patterns, so
    // the reloaded estimate must be the same to the last bit.
    EXPECT_EQ(x, y) << "pair (" << a << ", " << b << ")";
  }
  std::remove(path.c_str());
}

// The family-generic persistence round trip: every registered family's
// store must encode, decode, and reproduce byte-identical estimates.
TEST(StorePersistenceTest, EveryFamilyRoundTripsWithIdenticalEstimates) {
  for (const FamilyInfo& info : RegisteredFamilies()) {
    const auto store = MakePopulatedStore(20, info.name);
    auto reloaded = DecodeSketchStore(EncodeSketchStore(store));
    ASSERT_TRUE(reloaded.ok())
        << info.name << ": " << reloaded.status().ToString();
    EXPECT_EQ(reloaded.value().options().family, info.name);
    EXPECT_EQ(reloaded.value().options().sketch, store.options().sketch);
    ASSERT_EQ(reloaded.value().Ids(), store.Ids()) << info.name;

    QueryEngine before(&store);
    QueryEngine after(&reloaded.value());
    const auto ids = store.Ids();
    for (size_t i = 1; i < ids.size(); ++i) {
      EXPECT_EQ(before.EstimateInnerProduct(ids[0], ids[i]).value(),
                after.EstimateInnerProduct(ids[0], ids[i]).value())
          << info.name << " pair (" << ids[0] << ", " << ids[i] << ")";
    }
  }
}

TEST(StorePersistenceTest, EncodingIsDeterministic) {
  const auto store = MakePopulatedStore(30);
  const std::string bytes = EncodeSketchStore(store);
  EXPECT_EQ(bytes, EncodeSketchStore(store));

  auto reloaded = DecodeSketchStore(bytes);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(EncodeSketchStore(reloaded.value()), bytes);
}

TEST(StorePersistenceTest, EmptyStoreRoundTrips) {
  const auto store = MakePopulatedStore(0);
  auto reloaded = DecodeSketchStore(EncodeSketchStore(store));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().size(), 0u);
}

// The acceptance path for compact catalogs: load-or-build a full-precision
// WMH store, compactify, save — the compact file round-trips byte-
// identically, serves identical estimates, and is refused when opened with
// full-precision expectations.
TEST(StorePersistenceTest, CompactifiedStoreRoundTripsByteIdentically) {
  auto store = MakePopulatedStore(40);
  ASSERT_TRUE(store.CompactifyInPlace("wmh_compact").ok());

  const std::string path = TempPath("compact_catalog.store");
  ASSERT_TRUE(SaveSketchStore(store, path).ok());
  // Reopening requires the compact identity — the resolved options of the
  // source WMH store under family "wmh_compact".
  auto expected = SmallStoreOptions("wmh_compact");
  auto reloaded = LoadSketchStoreAs(path, expected);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().options().family, "wmh_compact");
  EXPECT_EQ(reloaded.value().TotalStorageWords(),
            store.TotalStorageWords());

  // Byte-identical round trip, byte-identical estimates.
  EXPECT_EQ(EncodeSketchStore(reloaded.value()), EncodeSketchStore(store));
  QueryEngine before(&store);
  QueryEngine after(&reloaded.value());
  const auto ids = store.Ids();
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(before.EstimateInnerProduct(ids[0], ids[i]).value(),
              after.EstimateInnerProduct(ids[0], ids[i]).value());
  }

  // The same file is refused under full-precision "wmh" expectations.
  EXPECT_EQ(LoadSketchStoreAs(path, SmallStoreOptions()).status().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// A legacy version-1 file — the WMH-only format written before the
// SketchFamily redesign — must still load, as a "wmh" store with identical
// estimates. The v1 bytes are built by hand here, field for field.
TEST(StorePersistenceTest, ReadsLegacyV1WmhFile) {
  // v1 files predate the dart engine: their header can only declare
  // active_index or expanded_reference, so the comparison store is pinned
  // to active_index rather than the current default.
  auto v1_options = SmallStoreOptions();
  v1_options.sketch.params["engine"] = "active_index";
  auto store = SketchStore::Make(v1_options).value();
  for (uint64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i * 11, RandomVector(i)).ok());
  }
  const WmhOptions wmh_options = [&] {
    WmhOptions o;
    o.num_samples = store.options().sketch.num_samples;
    o.seed = store.options().sketch.seed;
    o.L = std::stoull(store.options().sketch.params.at("L"));
    return o;
  }();

  // v1 layout: [magic][version=1][dimension][num_shards][num_samples]
  // [seed][L][engine u8][count][id, SerializeWmh bytes]*[fnv1a].
  std::string v1;
  wire::AppendU32(&v1, 0x49505354);  // "IPST"
  wire::AppendU8(&v1, 1);
  wire::AppendU64(&v1, kDim);
  wire::AppendU64(&v1, store.options().num_shards);
  wire::AppendU64(&v1, wmh_options.num_samples);
  wire::AppendU64(&v1, wmh_options.seed);
  wire::AppendU64(&v1, wmh_options.L);
  wire::AppendU8(&v1, 0);  // kActiveIndex
  const auto entries = store.Snapshot();
  wire::AppendU64(&v1, entries.size());
  for (size_t s = 0; s < store.num_shards(); ++s) {
    for (const auto& entry : store.ShardSnapshot(s)) {
      const WmhSketch* wmh = GetSketchAs<WmhSketch>(*entry.sketch);
      ASSERT_NE(wmh, nullptr);
      wire::AppendU64(&v1, entry.id);
      wire::AppendBytes(&v1, V1WmhPayload(*wmh));
    }
  }
  wire::AppendU64(&v1, Fnv1a(v1));

  auto loaded = DecodeSketchStore(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().options().family, "wmh");
  EXPECT_EQ(loaded.value().options().sketch, store.options().sketch);
  EXPECT_EQ(loaded.value().Ids(), store.Ids());

  QueryEngine before(&store);
  QueryEngine after(&loaded.value());
  const auto ids = store.Ids();
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(before.EstimateInnerProduct(ids[0], ids[i]).value(),
              after.EstimateInnerProduct(ids[0], ids[i]).value());
  }

  // Re-encoding a v1-loaded store produces a v2 file that round-trips.
  auto reencoded = DecodeSketchStore(EncodeSketchStore(loaded.value()));
  ASSERT_TRUE(reencoded.ok());
  EXPECT_EQ(reencoded.value().Ids(), store.Ids());
}

// Per-sketch v1 payloads carry no engine byte; their engine comes from the
// store header. A v1 file declaring expanded_reference must load with its
// sketches adopted to that engine — not rejected as active_index.
TEST(StorePersistenceTest, ReadsLegacyV1ExpandedReferenceFile) {
  auto options = SmallStoreOptions();
  options.sketch.params["engine"] = "expanded_reference";
  options.sketch.params["L"] = "2048";  // small enough for the oracle
  auto store = SketchStore::Make(options).value();
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i * 7, RandomVector(i)).ok());
  }

  std::string v1;
  wire::AppendU32(&v1, 0x49505354);  // "IPST"
  wire::AppendU8(&v1, 1);
  wire::AppendU64(&v1, kDim);
  wire::AppendU64(&v1, store.options().num_shards);
  wire::AppendU64(&v1, store.options().sketch.num_samples);
  wire::AppendU64(&v1, store.options().sketch.seed);
  wire::AppendU64(&v1, 2048);
  wire::AppendU8(&v1, 1);  // kExpandedReference
  const auto entries = store.Snapshot();
  wire::AppendU64(&v1, entries.size());
  for (size_t s = 0; s < store.num_shards(); ++s) {
    for (const auto& entry : store.ShardSnapshot(s)) {
      const WmhSketch* wmh = GetSketchAs<WmhSketch>(*entry.sketch);
      ASSERT_NE(wmh, nullptr);
      wire::AppendU64(&v1, entry.id);
      wire::AppendBytes(&v1, V1WmhPayload(*wmh));
    }
  }
  wire::AppendU64(&v1, Fnv1a(v1));

  auto loaded = DecodeSketchStore(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().options().sketch.params.at("engine"),
            "expanded_reference");
  EXPECT_EQ(loaded.value().Ids(), store.Ids());
  QueryEngine before(&store);
  QueryEngine after(&loaded.value());
  const auto ids = store.Ids();
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(before.EstimateInnerProduct(ids[0], ids[i]).value(),
              after.EstimateInnerProduct(ids[0], ids[i]).value());
  }
}

// v2 icws store files written before the engine/L params existed carry an
// empty params block and exact-engine sketches; they must keep loading as
// the exact engine, not resolve to the modern dart default (which would
// reject every stored sketch).
TEST(StorePersistenceTest, ReadsEnginelessV2IcwsFile) {
  auto exact_options = SmallStoreOptions("icws");
  exact_options.sketch.params["engine"] = "icws";
  auto store = SketchStore::Make(exact_options).value();
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i * 5, RandomVector(i)).ok());
  }

  // Hand-build the old file: v2 store header with NO params, per-sketch v1
  // payloads (no engine/L fields) — exactly what the pre-dart writer
  // produced.
  std::string old_file;
  wire::AppendU32(&old_file, 0x49505354);  // "IPST"
  wire::AppendU8(&old_file, 2);
  wire::AppendBytes(&old_file, "icws");
  wire::AppendU64(&old_file, store.options().num_shards);
  wire::AppendU64(&old_file, kDim);
  wire::AppendU64(&old_file, store.options().sketch.num_samples);
  wire::AppendU64(&old_file, store.options().sketch.seed);
  wire::AppendU64(&old_file, 0);  // param count: engine-less era
  const auto entries = store.Snapshot();
  wire::AppendU64(&old_file, entries.size());
  for (size_t s = 0; s < store.num_shards(); ++s) {
    for (const auto& entry : store.ShardSnapshot(s)) {
      const IcwsSketch* icws = GetSketchAs<IcwsSketch>(*entry.sketch);
      ASSERT_NE(icws, nullptr);
      std::string blob;
      wire::AppendU32(&blob, 0x49505348);  // "IPSH"
      wire::AppendU8(&blob, 1);
      wire::AppendU8(&blob, 6);  // kIcws
      wire::AppendU64(&blob, icws->seed);
      wire::AppendU64(&blob, icws->dimension);
      wire::AppendDouble(&blob, icws->norm);
      wire::AppendU64(&blob, icws->fingerprints.size());
      for (uint64_t fp : icws->fingerprints) wire::AppendU64(&blob, fp);
      wire::AppendU64(&blob, icws->values.size());
      for (double v : icws->values) wire::AppendDouble(&blob, v);
      wire::AppendU64(&old_file, entry.id);
      wire::AppendBytes(&old_file, blob);
    }
  }
  wire::AppendU64(&old_file, Fnv1a(old_file));

  auto loaded = DecodeSketchStore(old_file);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().options().sketch.params.at("engine"), "icws");
  EXPECT_EQ(loaded.value().Ids(), store.Ids());
  QueryEngine before(&store);
  QueryEngine after(&loaded.value());
  const auto ids = store.Ids();
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_EQ(before.EstimateInnerProduct(ids[0], ids[i]).value(),
              after.EstimateInnerProduct(ids[0], ids[i]).value());
  }
}

// Opening a file with the wrong expectations must fail loudly, not load
// into silently incompatible estimates.
TEST(StorePersistenceTest, LoadAsRejectsMismatchedFamilyOrOptions) {
  const auto store = MakePopulatedStore(10);
  const std::string path = TempPath("store_mismatch.bin");
  ASSERT_TRUE(SaveSketchStore(store, path).ok());

  // The honest expectation loads (including with unresolved defaults:
  // no L param at all resolves to the same DefaultL the file holds).
  EXPECT_TRUE(LoadSketchStoreAs(path, SmallStoreOptions()).ok());

  // Wrong family.
  auto wrong_family = LoadSketchStoreAs(path, SmallStoreOptions("cs"));
  EXPECT_EQ(wrong_family.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(wrong_family.status().message().find("family"),
            std::string::npos);

  // Wrong seed.
  SketchStoreOptions wrong_seed = SmallStoreOptions();
  wrong_seed.sketch.seed = 43;
  EXPECT_EQ(LoadSketchStoreAs(path, wrong_seed).status().code(),
            StatusCode::kFailedPrecondition);

  // Wrong sample count.
  SketchStoreOptions wrong_m = SmallStoreOptions();
  wrong_m.sketch.num_samples = 128;
  EXPECT_EQ(LoadSketchStoreAs(path, wrong_m).status().code(),
            StatusCode::kFailedPrecondition);

  // Wrong family param (L).
  SketchStoreOptions wrong_l = SmallStoreOptions();
  wrong_l.sketch.params["L"] = "12345";
  EXPECT_EQ(LoadSketchStoreAs(path, wrong_l).status().code(),
            StatusCode::kFailedPrecondition);

  std::remove(path.c_str());
}

// Corruption rejection is a per-family property — each family frames its
// own payloads inside the store's entry stream — so the sweep runs once
// per registered family, not just for WMH.
class CorruptedStoreTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorruptedStoreTest, RejectsCorruptedBytes) {
  const auto store = MakePopulatedStore(10, GetParam());
  std::string bytes = EncodeSketchStore(store);

  EXPECT_FALSE(DecodeSketchStore("").ok());
  EXPECT_FALSE(DecodeSketchStore("IPSX junk").ok());
  // Truncation anywhere inside the entry stream must be detected.
  EXPECT_FALSE(DecodeSketchStore(
                   std::string_view(bytes).substr(0, bytes.size() - 3))
                   .ok());
  EXPECT_FALSE(DecodeSketchStore(
                   std::string_view(bytes).substr(0, bytes.size() / 2))
                   .ok());
  // Trailing garbage after the last entry must be detected.
  EXPECT_FALSE(DecodeSketchStore(bytes + "x").ok());
  // A flipped magic byte must be detected.
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeSketchStore(bad_magic).ok());
  // A flipped byte *inside a sketch payload* is structurally valid wire
  // data; the checksum trailer must catch it at every position.
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string flipped = bytes;
    flipped[pos] ^= 0x41;
    EXPECT_FALSE(DecodeSketchStore(flipped).ok()) << "flip at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, CorruptedStoreTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> names;
      for (const FamilyInfo& info : RegisteredFamilies()) {
        names.push_back(info.name);
      }
      return names;
    }()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove(name.begin(), name.end(), '_'), name.end());
      return name;
    });

TEST(StorePersistenceTest, RejectsAbsurdShardCounts) {
  const auto store = MakePopulatedStore(3);
  const std::string bytes = EncodeSketchStore(store);
  // num_shards sits right after [magic u32][version u8][len u64]["wmh"];
  // blow it up to 2^64-1 and re-seal the checksum so only the shard-count
  // guard can reject the file (not the corruption trailer).
  const size_t offset = 4 + 1 + 8 + 3;
  std::string patched = bytes.substr(0, bytes.size() - 8);
  for (size_t i = 0; i < 8; ++i) patched[offset + i] = '\xff';
  wire::AppendU64(&patched, Fnv1a(patched));
  auto decoded = DecodeSketchStore(patched);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("shard count"),
            std::string::npos);
}

TEST(StorePersistenceTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(LoadSketchStore(TempPath("does_not_exist.bin")).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ipsketch
