#include "table/table.h"

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

Table Example() {
  return Table::MakeOrDie("weather", {1, 2, 3},
                          {"temp", "precip"},
                          {{20.0, 21.0, 19.0}, {0.0, 5.0, 2.0}});
}

TEST(TableTest, MakeValidatesShapes) {
  EXPECT_FALSE(Table::Make("t", {1, 2}, {"a"}, {{1.0}}).ok());  // short col
  EXPECT_FALSE(Table::Make("t", {1, 2}, {"a", "b"}, {{1.0, 2.0}}).ok());
  EXPECT_TRUE(Table::Make("t", {1, 2}, {"a"}, {{1.0, 2.0}}).ok());
}

TEST(TableTest, MakeRejectsDuplicateKeys) {
  auto t = Table::Make("t", {1, 1}, {"a"}, {{1.0, 2.0}});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, Accessors) {
  const Table t = Example();
  EXPECT_EQ(t.name(), "weather");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.column_names()[1], "precip");
}

TEST(TableTest, ColumnByName) {
  const Table t = Example();
  auto col = t.Column("precip");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col.value().name(), "weather.precip");
  EXPECT_EQ(col.value().values(), (std::vector<double>{0.0, 5.0, 2.0}));
  EXPECT_EQ(col.value().keys(), t.keys());
}

TEST(TableTest, MissingColumnIsNotFound) {
  const Table t = Example();
  auto col = t.Column("humidity");
  EXPECT_FALSE(col.ok());
  EXPECT_EQ(col.status().code(), StatusCode::kNotFound);
}

TEST(TableTest, ColumnAtBounds) {
  const Table t = Example();
  EXPECT_TRUE(t.ColumnAt(0).ok());
  EXPECT_TRUE(t.ColumnAt(1).ok());
  auto bad = t.ColumnAt(2);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(TableTest, EmptyTable) {
  const auto t = Table::MakeOrDie("empty", {}, {"a"}, {{}});
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_TRUE(t.ColumnAt(0).ok());
  EXPECT_EQ(t.ColumnAt(0).value().size(), 0u);
}

}  // namespace
}  // namespace ipsketch
