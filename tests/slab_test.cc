// SketchSlab (structure-of-arrays catalog blocks): the slab's 1-vs-many
// estimates must be bit-identical to the family's pair-at-a-time Estimate —
// per banding family and per available SIMD kernel tier — and swap-remove
// must preserve the surviving slots' lanes exactly. Non-banding families
// must refuse NewSlab/AppendLshCodes with FailedPrecondition.

#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "core/simd/dispatch.h"
#include "sketch/family.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDimension = 512;
constexpr size_t kNumSamples = 67;  // odd: every tier runs its scalar tail

struct FamilyConfig {
  std::string family;
  std::map<std::string, std::string> params;
};

std::vector<FamilyConfig> BandingConfigs() {
  return {
      {"wmh", {{"engine", "dart"}}},
      {"icws", {{"engine", "dart"}}},
      {"mh", {}},
      {"wmh_compact", {{"engine", "dart"}}},
      {"wmh_bbit", {{"engine", "dart"}, {"bits", "12"}}},
  };
}

SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  uint64_t index = rng.NextBounded(5);
  while (entries.size() < 40 && index < kDimension) {
    double v = rng.NextGaussian();
    if (v == 0.0) v = 0.5;
    entries.push_back({index, v});
    index += 1 + rng.NextBounded(6);
  }
  return SparseVector::MakeOrDie(kDimension, std::move(entries));
}

std::shared_ptr<const SketchFamily> MakeFamilyOrDie(
    const FamilyConfig& config) {
  FamilyOptions options;
  options.dimension = kDimension;
  options.num_samples = kNumSamples;
  options.seed = 7;
  options.params = config.params;
  auto family = MakeFamily(config.family, options);
  IPS_CHECK(family.ok());
  return std::move(family).value();
}

std::vector<std::unique_ptr<AnySketch>> SketchCorpus(
    const SketchFamily& family, size_t count, uint64_t seed_base) {
  auto sketcher = family.MakeSketcher();
  IPS_CHECK(sketcher.ok());
  std::vector<std::unique_ptr<AnySketch>> out;
  for (size_t i = 0; i < count; ++i) {
    auto sketch = family.NewSketch();
    IPS_CHECK(
        sketcher.value()->Sketch(RandomVector(seed_base + i), sketch.get())
            .ok());
    out.push_back(std::move(sketch));
  }
  return out;
}

class ScopedKernel {
 public:
  explicit ScopedKernel(const simd::EstimateKernel* kernel) {
    simd::SetActiveKernelForTesting(kernel);
  }
  ~ScopedKernel() { simd::SetActiveKernelForTesting(nullptr); }
};

TEST(SlabTest, EstimatesBitIdenticalToPairwiseAcrossFamiliesAndKernels) {
  constexpr size_t kCorpus = 12;
  for (const FamilyConfig& config : BandingConfigs()) {
    SCOPED_TRACE(config.family);
    auto family = MakeFamilyOrDie(config);
    ASSERT_TRUE(family->supports_banding());
    auto corpus = SketchCorpus(*family, kCorpus, 1000);
    const auto& query = *corpus[0];

    auto slab = family->NewSlab();
    ASSERT_TRUE(slab.ok()) << slab.status().ToString();
    for (const auto& sketch : corpus) {
      ASSERT_TRUE(slab.value()->Append(*sketch).ok());
    }
    ASSERT_EQ(slab.value()->size(), kCorpus);

    for (const simd::EstimateKernel* kernel : simd::AvailableKernels()) {
      ScopedKernel scoped(kernel);
      // Pairwise references under this exact kernel tier.
      std::vector<double> expected;
      for (const auto& sketch : corpus) {
        auto est = family->Estimate(query, *sketch);
        ASSERT_TRUE(est.ok()) << est.status().ToString();
        expected.push_back(est.value());
      }

      // EstimateAt: slot by slot.
      for (size_t slot = 0; slot < kCorpus; ++slot) {
        auto got = slab.value()->EstimateAt(query, slot);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(std::bit_cast<uint64_t>(expected[slot]),
                  std::bit_cast<uint64_t>(got.value()))
            << "slot " << slot;
      }

      // EstimateAll: the exact-scan path.
      std::vector<double> all(kCorpus, 0.0);
      ASSERT_TRUE(slab.value()->EstimateAll(query, all.data()).ok());
      for (size_t slot = 0; slot < kCorpus; ++slot) {
        EXPECT_EQ(std::bit_cast<uint64_t>(expected[slot]),
                  std::bit_cast<uint64_t>(all[slot]));
      }

      // EstimateMany: the re-rank path, over a shuffled subset.
      const std::vector<uint32_t> slots = {7, 0, 11, 3, 3};
      std::vector<double> many(slots.size(), 0.0);
      ASSERT_TRUE(slab.value()
                      ->EstimateMany(query, slots.data(), slots.size(),
                                     many.data())
                      .ok());
      for (size_t i = 0; i < slots.size(); ++i) {
        EXPECT_EQ(std::bit_cast<uint64_t>(expected[slots[i]]),
                  std::bit_cast<uint64_t>(many[i]));
      }
    }
  }
}

TEST(SlabTest, SwapRemoveMovesLastSlotAndPreservesLanes) {
  for (const FamilyConfig& config : BandingConfigs()) {
    SCOPED_TRACE(config.family);
    auto family = MakeFamilyOrDie(config);
    auto corpus = SketchCorpus(*family, 6, 2000);
    const auto& query = *corpus[1];

    auto slab = family->NewSlab();
    ASSERT_TRUE(slab.ok());
    for (const auto& sketch : corpus) {
      ASSERT_TRUE(slab.value()->Append(*sketch).ok());
    }

    // Remove slot 2: slot 5's lanes move into slot 2.
    slab.value()->SwapRemove(2);
    ASSERT_EQ(slab.value()->size(), 5u);
    // Survivors, in their post-move slots: 0, 1, 5, 3, 4.
    const std::vector<size_t> resident = {0, 1, 5, 3, 4};
    for (size_t slot = 0; slot < resident.size(); ++slot) {
      auto expected = family->Estimate(query, *corpus[resident[slot]]);
      ASSERT_TRUE(expected.ok());
      auto got = slab.value()->EstimateAt(query, slot);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(std::bit_cast<uint64_t>(expected.value()),
                std::bit_cast<uint64_t>(got.value()))
          << "slot " << slot;
    }

    // Removing the last slot shrinks without moving anything.
    slab.value()->SwapRemove(4);
    ASSERT_EQ(slab.value()->size(), 4u);
    auto expected = family->Estimate(query, *corpus[5]);
    ASSERT_TRUE(expected.ok());
    auto got = slab.value()->EstimateAt(query, 2);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(expected.value()),
              std::bit_cast<uint64_t>(got.value()));
  }
}

TEST(SlabTest, AppendRejectsIncompatibleSketches) {
  auto family = MakeFamilyOrDie({"wmh", {{"engine", "dart"}}});
  FamilyOptions other_options = family->options();
  other_options.seed = 99;  // different identity
  auto other = MakeFamily("wmh", other_options);
  ASSERT_TRUE(other.ok());
  auto foreign = SketchCorpus(*other.value(), 1, 3000);

  auto slab = family->NewSlab();
  ASSERT_TRUE(slab.ok());
  EXPECT_EQ(slab.value()->Append(*foreign[0]).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(slab.value()->size(), 0u);
}

TEST(SlabTest, LshCodesAreOnePerSampleAndCollisionExact) {
  for (const FamilyConfig& config : BandingConfigs()) {
    SCOPED_TRACE(config.family);
    auto family = MakeFamilyOrDie(config);
    auto corpus = SketchCorpus(*family, 2, 4000);

    std::vector<uint64_t> codes_a, codes_b;
    ASSERT_TRUE(family->AppendLshCodes(*corpus[0], &codes_a).ok());
    ASSERT_TRUE(family->AppendLshCodes(*corpus[1], &codes_b).ok());
    EXPECT_EQ(codes_a.size(), kNumSamples);
    EXPECT_EQ(codes_b.size(), kNumSamples);

    // Two sketches of the same vector collide on every sample.
    auto sketcher = family->MakeSketcher();
    ASSERT_TRUE(sketcher.ok());
    auto duplicate = family->NewSketch();
    ASSERT_TRUE(
        sketcher.value()->Sketch(RandomVector(4000), duplicate.get()).ok());
    std::vector<uint64_t> codes_dup;
    ASSERT_TRUE(family->AppendLshCodes(*duplicate, &codes_dup).ok());
    EXPECT_EQ(codes_a, codes_dup);

    // Append accumulates rather than clearing.
    ASSERT_TRUE(family->AppendLshCodes(*corpus[1], &codes_a).ok());
    EXPECT_EQ(codes_a.size(), 2 * kNumSamples);
  }
}

TEST(SlabTest, NonBandingFamiliesRefuseSlabsAndCodes) {
  for (const char* name : {"kmv", "cs", "jl"}) {
    SCOPED_TRACE(name);
    auto family = MakeFamilyOrDie({name, {}});
    EXPECT_FALSE(family->supports_banding());
    EXPECT_EQ(family->NewSlab().status().code(),
              StatusCode::kFailedPrecondition);
    std::vector<uint64_t> codes;
    auto corpus = SketchCorpus(*family, 1, 5000);
    EXPECT_EQ(family->AppendLshCodes(*corpus[0], &codes).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_TRUE(codes.empty());
  }
}

TEST(SlabTest, RegistryBandingFlagsMatchTheSamplingFamilies) {
  for (const FamilyInfo& info : RegisteredFamilies()) {
    const bool expected = info.name == "wmh" || info.name == "icws" ||
                          info.name == "mh" || info.name == "wmh_compact" ||
                          info.name == "wmh_bbit";
    EXPECT_EQ(info.supports_banding, expected) << info.name;
  }
}

}  // namespace
}  // namespace ipsketch
