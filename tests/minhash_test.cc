#include "sketch/minhash.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector RangeVector(uint64_t dim, uint64_t lo, uint64_t hi, double value) {
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) entries.push_back({i, value});
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

MhSketch Sketch(const SparseVector& v, size_t m, uint64_t seed) {
  MhOptions o;
  o.num_samples = m;
  o.seed = seed;
  return SketchMh(v, o).value();
}

TEST(MhOptionsTest, Validation) {
  MhOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_samples = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(MhSketchTest, DeterministicAndShaped) {
  const auto v = RangeVector(256, 0, 64, 2.0);
  const auto s1 = Sketch(v, 32, 5);
  const auto s2 = Sketch(v, 32, 5);
  EXPECT_EQ(s1.hashes, s2.hashes);
  EXPECT_EQ(s1.values, s2.values);
  EXPECT_DOUBLE_EQ(s1.StorageWords(), 48.0);  // 1.5 · 32
}

TEST(MhSketchTest, EmptyVectorUsesHashSupremum) {
  SparseVector zero = SparseVector::FromDense(std::vector<double>(8, 0.0));
  const auto s = Sketch(zero, 16, 1);
  for (double h : s.hashes) EXPECT_EQ(h, 1.0);
  for (double v : s.values) EXPECT_EQ(v, 0.0);
}

TEST(MhSketchTest, ValueIsVectorEntryAtArgmin) {
  // Every sampled value must be one of the vector's non-zero values.
  Xoshiro256StarStar rng(3);
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 50; ++i) entries.push_back({i * 3, 1.0 + i});
  const auto v = SparseVector::MakeOrDie(256, entries);
  const auto s = Sketch(v, 64, 7);
  for (double value : s.values) {
    EXPECT_GE(value, 1.0);
    EXPECT_LE(value, 50.0);
  }
}

TEST(MhSketchTest, Fact3MatchProbabilityIsJaccard) {
  // |A| = 60, |B| = 60, |A∩B| = 30 ⇒ J = 30/90 = 1/3.
  const auto a = RangeVector(256, 0, 60, 1.0);
  const auto b = RangeVector(256, 30, 90, 1.0);
  size_t matches = 0;
  const size_t m = 256;
  const int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto sa = Sketch(a, m, seed);
    const auto sb = Sketch(b, m, seed);
    for (size_t i = 0; i < m; ++i) matches += (sa.hashes[i] == sb.hashes[i]);
  }
  EXPECT_NEAR(static_cast<double>(matches) / (m * kSeeds), 1.0 / 3.0, 0.02);
}

TEST(MhSketchTest, Lemma1UnionEstimate) {
  // Ũ = m/Σ min(h_a, h_b) − 1 approximates |A ∪ B| (Lemma 1).
  const auto a = RangeVector(1024, 0, 200, 1.0);
  const auto b = RangeVector(1024, 100, 300, 1.0);  // union = 300
  const size_t m = 512;
  double est_sum = 0.0;
  const int kSeeds = 20;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto sa = Sketch(a, m, seed);
    const auto sb = Sketch(b, m, seed);
    double min_sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      min_sum += std::min(sa.hashes[i], sb.hashes[i]);
    }
    est_sum += static_cast<double>(m) / min_sum - 1.0;
  }
  EXPECT_NEAR(est_sum / kSeeds, 300.0, 15.0);
}

TEST(MhEstimatorTest, CompatibilityChecks) {
  const auto v = RangeVector(64, 0, 32, 1.0);
  EXPECT_FALSE(EstimateMhInnerProduct(Sketch(v, 8, 1), Sketch(v, 16, 1)).ok());
  EXPECT_FALSE(EstimateMhInnerProduct(Sketch(v, 8, 1), Sketch(v, 8, 2)).ok());
  MhOptions cw;
  cw.num_samples = 8;
  cw.hash_kind = HashKind::kCarterWegman31;
  EXPECT_FALSE(
      EstimateMhInnerProduct(Sketch(v, 8, 0), SketchMh(v, cw).value()).ok());
}

TEST(MhEstimatorTest, BinaryVectorsEstimateIntersectionSize) {
  const auto a = RangeVector(512, 0, 100, 1.0);
  const auto b = RangeVector(512, 50, 150, 1.0);  // intersection = 50
  double est_sum = 0.0;
  const int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum += EstimateMhInnerProduct(Sketch(a, 256, seed),
                                      Sketch(b, 256, seed))
                   .value();
  }
  EXPECT_NEAR(est_sum / kSeeds, 50.0, 5.0);
}

TEST(MhEstimatorTest, DisjointSupportsEstimateZero) {
  const auto a = RangeVector(512, 0, 100, 2.0);
  const auto b = RangeVector(512, 200, 300, 3.0);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    EXPECT_EQ(
        EstimateMhInnerProduct(Sketch(a, 64, seed), Sketch(b, 64, seed))
            .value(),
        0.0);
  }
}

TEST(MhEstimatorTest, EmptyVersusNonEmptyIsZero) {
  const auto v = RangeVector(64, 0, 32, 1.0);
  SparseVector zero = SparseVector::FromDense(std::vector<double>(64, 0.0));
  EXPECT_EQ(
      EstimateMhInnerProduct(Sketch(v, 32, 3), Sketch(zero, 32, 3)).value(),
      0.0);
}

TEST(MhEstimatorTest, Theorem4BoundOnBoundedVectors) {
  // Entries bounded by c = 2: median error over seeds should respect
  // ε·c²·√(max(|A|,|B|)·|A∩B|) with ε = O(1/√m).
  Xoshiro256StarStar rng(5);
  std::vector<Entry> ea, eb;
  for (uint64_t i = 0; i < 120; ++i) {
    ea.push_back({i, (rng.NextUnit() * 4.0 - 2.0)});
  }
  for (uint64_t i = 60; i < 180; ++i) {
    eb.push_back({i, (rng.NextUnit() * 4.0 - 2.0)});
  }
  const auto a = SparseVector::MakeOrDie(512, ea);
  const auto b = SparseVector::MakeOrDie(512, eb);
  const double truth = Dot(a, b);
  const size_t m = 128;
  std::vector<double> errors;
  for (int seed = 0; seed < 31; ++seed) {
    errors.push_back(std::fabs(
        EstimateMhInnerProduct(Sketch(a, m, seed), Sketch(b, m, seed)).value() -
        truth));
  }
  std::sort(errors.begin(), errors.end());
  const double c2 = 4.0;
  const double set_scale = std::sqrt(120.0 * 60.0);
  const double epsilon = 4.0 / std::sqrt(static_cast<double>(m));
  EXPECT_LE(errors[errors.size() / 2], epsilon * c2 * set_scale);
}

TEST(MhEstimatorTest, CarterWegmanFamilyAlsoWorks) {
  // The paper's practical 2-wise family gives comparable estimates on
  // scattered supports.
  Xoshiro256StarStar rng(7);
  std::vector<Entry> ea, eb;
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t idx = Mix64(i) % 4096;
    ea.push_back({idx, 1.0});
    eb.push_back({Mix64(i + 100) % 4096, 1.0});
  }
  std::sort(ea.begin(), ea.end(),
            [](const Entry& x, const Entry& y) { return x.index < y.index; });
  ea.erase(std::unique(ea.begin(), ea.end(),
                       [](const Entry& x, const Entry& y) {
                         return x.index == y.index;
                       }),
           ea.end());
  std::sort(eb.begin(), eb.end(),
            [](const Entry& x, const Entry& y) { return x.index < y.index; });
  eb.erase(std::unique(eb.begin(), eb.end(),
                       [](const Entry& x, const Entry& y) {
                         return x.index == y.index;
                       }),
           eb.end());
  const auto a = SparseVector::MakeOrDie(4096, ea);
  const auto b = SparseVector::MakeOrDie(4096, eb);
  const double truth = Dot(a, b);
  MhOptions o;
  o.num_samples = 512;
  o.hash_kind = HashKind::kCarterWegman31;
  double est_sum = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    o.seed = seed;
    est_sum += EstimateMhInnerProduct(SketchMh(a, o).value(),
                                      SketchMh(b, o).value())
                   .value();
  }
  EXPECT_NEAR(est_sum / kSeeds, truth, std::max(5.0, 0.2 * truth));
}

TEST(TruncatedMhTest, PrefixMatchesFreshSketch) {
  const auto a = RangeVector(512, 0, 100, 1.5);
  const auto b = RangeVector(512, 50, 150, 2.5);
  const auto sa = Sketch(a, 128, 9);
  const auto sb = Sketch(b, 128, 9);
  EXPECT_DOUBLE_EQ(
      EstimateMhInnerProduct(TruncatedMh(sa, 32), TruncatedMh(sb, 32)).value(),
      EstimateMhInnerProduct(Sketch(a, 32, 9), Sketch(b, 32, 9)).value());
}

}  // namespace
}  // namespace ipsketch
