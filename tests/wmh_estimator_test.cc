#include "core/wmh_estimator.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rounding.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector OverlappingVector(uint64_t dim, uint64_t lo, uint64_t hi,
                               uint64_t seed, double heavy_every = 7) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) {
    double v = 0.3 + rng.NextUnit();
    if (heavy_every > 0 && i % static_cast<uint64_t>(heavy_every) == 0) {
      v *= 8.0;
    }
    if (rng.NextUnit() < 0.5) v = -v;
    entries.push_back({i, v});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

WmhSketch Sketch(const SparseVector& v, size_t m, uint64_t seed,
                 uint64_t L = 1 << 14) {
  WmhOptions o;
  o.num_samples = m;
  o.seed = seed;
  o.L = L;
  return SketchWmh(v, o).value();
}

TEST(WmhEstimatorTest, RejectsMismatchedSampleCounts) {
  const auto v = OverlappingVector(64, 0, 32, 1);
  const auto a = Sketch(v, 16, 1);
  const auto b = Sketch(v, 32, 1);
  EXPECT_EQ(EstimateWmhInnerProduct(a, b).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WmhEstimatorTest, RejectsMismatchedSeeds) {
  const auto v = OverlappingVector(64, 0, 32, 1);
  EXPECT_FALSE(
      EstimateWmhInnerProduct(Sketch(v, 16, 1), Sketch(v, 16, 2)).ok());
}

TEST(WmhEstimatorTest, RejectsMismatchedL) {
  const auto v = OverlappingVector(64, 0, 32, 1);
  EXPECT_FALSE(EstimateWmhInnerProduct(Sketch(v, 16, 1, 1024),
                                       Sketch(v, 16, 1, 2048))
                   .ok());
}

TEST(WmhEstimatorTest, RejectsMismatchedDimensions) {
  const auto a = OverlappingVector(64, 0, 32, 1);
  const auto b = OverlappingVector(128, 0, 32, 1);
  EXPECT_FALSE(
      EstimateWmhInnerProduct(Sketch(a, 16, 1), Sketch(b, 16, 1)).ok());
}

TEST(WmhEstimatorTest, ZeroVectorGivesExactZero) {
  const auto v = OverlappingVector(64, 0, 32, 1);
  SparseVector zero = SparseVector::FromDense(std::vector<double>(64, 0.0));
  EXPECT_EQ(EstimateWmhInnerProduct(Sketch(v, 16, 1), Sketch(zero, 16, 1))
                .value(),
            0.0);
  EXPECT_EQ(EstimateWmhInnerProduct(Sketch(zero, 16, 1), Sketch(zero, 16, 1))
                .value(),
            0.0);
}

TEST(WmhEstimatorTest, DisjointSupportsEstimateZero) {
  const auto a = OverlappingVector(256, 0, 64, 3);
  const auto b = OverlappingVector(256, 128, 192, 4);
  // No shared support ⇒ no matches possible ⇒ estimate exactly 0.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    EXPECT_EQ(
        EstimateWmhInnerProduct(Sketch(a, 64, seed), Sketch(b, 64, seed))
            .value(),
        0.0);
  }
}

TEST(WmhEstimatorTest, UnbiasedOverSeeds) {
  const auto a = OverlappingVector(200, 0, 120, 5);
  const auto b = OverlappingVector(200, 60, 180, 6);
  const double truth = Dot(a, b);
  double sum = 0.0;
  const int kSeeds = 400;
  for (int seed = 0; seed < kSeeds; ++seed) {
    sum += EstimateWmhInnerProduct(Sketch(a, 128, seed), Sketch(b, 128, seed))
               .value();
  }
  const double mean = sum / kSeeds;
  // Mean over 400 seeds should sit near the truth relative to the error scale.
  const double scale = Theorem2Bound(a, b) / std::sqrt(128.0);
  EXPECT_NEAR(mean, truth, 3.0 * scale / std::sqrt(kSeeds) + 0.05 * std::fabs(truth));
}

TEST(WmhEstimatorTest, SelfInnerProductCloseToSquaredNorm) {
  const auto v = OverlappingVector(300, 0, 200, 7);
  const double truth = Dot(v, v);
  const double est =
      EstimateWmhInnerProduct(Sketch(v, 512, 11), Sketch(v, 512, 11)).value();
  // All samples match; the only noise is the union-size estimate, whose
  // relative error at m = 512 is a few percent.
  EXPECT_NEAR(est, truth, 0.2 * truth);
}

TEST(WmhEstimatorTest, ErrorDecreasesWithSampleCount) {
  const auto a = OverlappingVector(400, 0, 250, 13);
  const auto b = OverlappingVector(400, 150, 400, 14);
  const double truth = Dot(a, b);
  double err_small = 0.0, err_large = 0.0;
  const int kSeeds = 60;
  for (int seed = 0; seed < kSeeds; ++seed) {
    err_small += std::fabs(
        EstimateWmhInnerProduct(Sketch(a, 32, seed), Sketch(b, 32, seed))
            .value() -
        truth);
    err_large += std::fabs(
        EstimateWmhInnerProduct(Sketch(a, 512, seed), Sketch(b, 512, seed))
            .value() -
        truth);
  }
  // 16× more samples should cut error roughly 4×; require at least 1.8×.
  EXPECT_LT(err_large, err_small / 1.8);
}

// Parameterized bound check: across overlaps and sample counts, the observed
// error should respect the Theorem 2 scale ε·max(‖a_I‖‖b‖, ‖a‖‖b_I‖) with
// ε = c/√m for a modest constant.
struct BoundCase {
  uint64_t a_lo, a_hi, b_lo, b_hi;
  size_t m;
};

class WmhBoundTest : public ::testing::TestWithParam<BoundCase> {};

TEST_P(WmhBoundTest, ErrorWithinTheorem2Scale) {
  const BoundCase& c = GetParam();
  const auto a = OverlappingVector(500, c.a_lo, c.a_hi, 17);
  const auto b = OverlappingVector(500, c.b_lo, c.b_hi, 18);
  const double truth = Dot(a, b);
  const double scale = Theorem2Bound(a, b);

  // Median-of-seeds error: robust against the constant-probability tail a
  // single sketch is allowed (Theorem 2 gives 2/3 success per sketch).
  std::vector<double> errors;
  for (int seed = 0; seed < 31; ++seed) {
    errors.push_back(std::fabs(
        EstimateWmhInnerProduct(Sketch(a, c.m, seed), Sketch(b, c.m, seed))
            .value() -
        truth));
  }
  std::sort(errors.begin(), errors.end());
  const double median_error = errors[errors.size() / 2];
  const double epsilon = 4.0 / std::sqrt(static_cast<double>(c.m));
  EXPECT_LE(median_error, epsilon * scale + 1e-9)
      << "m=" << c.m << " truth=" << truth << " scale=" << scale;
}

INSTANTIATE_TEST_SUITE_P(
    OverlapAndSampleSweep, WmhBoundTest,
    ::testing::Values(BoundCase{0, 100, 50, 150, 64},     // 50% overlap
                      BoundCase{0, 100, 90, 190, 64},     // 10% overlap
                      BoundCase{0, 100, 99, 199, 64},     // 1% overlap
                      BoundCase{0, 200, 100, 300, 128},   // larger vectors
                      BoundCase{0, 100, 50, 150, 256},    // more samples
                      BoundCase{0, 400, 200, 500, 256},   // asymmetric sizes
                      BoundCase{0, 50, 0, 500, 128}));    // containment

TEST(WmhEstimatorTest, JaccardClosedFormUnionEstimatorWorks) {
  const auto a = OverlappingVector(300, 0, 200, 19);
  const auto b = OverlappingVector(300, 100, 300, 20);
  const double truth = Dot(a, b);
  WmhEstimateOptions jc;
  jc.union_estimator = UnionEstimator::kJaccardClosedForm;
  double err_sum = 0.0;
  const int kSeeds = 50;
  for (int seed = 0; seed < kSeeds; ++seed) {
    err_sum += std::fabs(
        EstimateWmhInnerProduct(Sketch(a, 256, seed), Sketch(b, 256, seed), jc)
            .value() -
        truth);
  }
  const double scale = Theorem2Bound(a, b);
  EXPECT_LT(err_sum / kSeeds, scale);  // loose sanity: same order as FM
}

TEST(TruncatedWmhTest, PrefixIsValidSketch) {
  const auto a = OverlappingVector(300, 0, 200, 21);
  const auto b = OverlappingVector(300, 100, 300, 22);
  const auto sa = Sketch(a, 256, 23);
  const auto sb = Sketch(b, 256, 23);
  const auto ta = TruncatedWmh(sa, 64);
  const auto tb = TruncatedWmh(sb, 64);
  EXPECT_EQ(ta.num_samples(), 64u);
  EXPECT_EQ(ta.norm, sa.norm);
  EXPECT_EQ(ta.engine, sa.engine);
  // Truncated sketches of a coordinated pair stay coordinated: the
  // estimate is finite and within the 64-sample error scale of the truth.
  const double est = EstimateWmhInnerProduct(ta, tb).value();
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_NEAR(est, Dot(a, b), 5.0 * Theorem2Bound(a, b));
}

TEST(TruncatedWmhTest, PrefixEqualsFreshSketchForPerSampleEngines) {
  // kActiveIndex and kExpandedReference key every sample's randomness by
  // (seed, sample, block) alone, so the first 64 samples of a 256-sample
  // sketch ARE a fresh 64-sample sketch. (kDart does not have this
  // property: its dart threshold and position→sample packing depend on m;
  // its prefixes are valid sketches but not bit-equal to fresh ones.)
  const auto a = OverlappingVector(300, 0, 200, 21);
  const auto b = OverlappingVector(300, 100, 300, 22);
  for (WmhEngine engine :
       {WmhEngine::kActiveIndex, WmhEngine::kExpandedReference}) {
    WmhOptions o;
    o.seed = 23;
    o.L = 1 << 14;
    o.engine = engine;
    o.num_samples = 256;
    const auto sa = SketchWmh(a, o).value();
    const auto sb = SketchWmh(b, o).value();
    o.num_samples = 64;
    const auto fresh_a = SketchWmh(a, o).value();
    const auto fresh_b = SketchWmh(b, o).value();
    EXPECT_DOUBLE_EQ(
        EstimateWmhInnerProduct(TruncatedWmh(sa, 64), TruncatedWmh(sb, 64))
            .value(),
        EstimateWmhInnerProduct(fresh_a, fresh_b).value());
  }
}

TEST(TruncatedWmhDeathTest, RejectsBadPrefix) {
  const auto v = OverlappingVector(64, 0, 32, 1);
  const auto s = Sketch(v, 16, 1);
  EXPECT_DEATH(TruncatedWmh(s, 0), "IPS_CHECK");
  EXPECT_DEATH(TruncatedWmh(s, 17), "IPS_CHECK");
}

}  // namespace
}  // namespace ipsketch
