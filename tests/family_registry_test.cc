#include "sketch/family.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rounding.h"
#include "data/synthetic.h"
#include "sketch/serialize.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDim = 512;

SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDim, 24, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDim, std::move(entries));
}

FamilyOptions SmallOptions() {
  FamilyOptions options;
  options.dimension = kDim;
  options.num_samples = 64;
  options.seed = 42;
  return options;
}

/// A value-parameterized fixture running every registered family through
/// the same assertions.
class FamilyRegistryTest : public ::testing::TestWithParam<FamilyInfo> {};

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyRegistryTest,
    ::testing::ValuesIn(RegisteredFamilies()),
    [](const ::testing::TestParamInfo<FamilyInfo>& info) {
      return info.param.name;
    });

TEST_P(FamilyRegistryTest, MetadataIsConsistent) {
  const FamilyInfo& info = GetParam();
  auto family = MakeFamily(info.name, SmallOptions()).value();
  EXPECT_EQ(family->name(), info.name);
  EXPECT_EQ(family->display_name(), info.display_name);
  EXPECT_EQ(family->storage_class(), info.storage);
  EXPECT_EQ(family->supports_merge(), info.supports_merge);
  EXPECT_EQ(family->supports_truncation(), info.supports_truncation);
  EXPECT_EQ(family->options().dimension, kDim);
  EXPECT_EQ(family->options().num_samples, 64u);
  EXPECT_EQ(family->options().seed, 42u);
}

TEST_P(FamilyRegistryTest, SketchEstimateIsFiniteAndCompatible) {
  auto family = MakeFamily(GetParam().name, SmallOptions()).value();
  auto sketcher = family->MakeSketcher().value();
  auto a = family->NewSketch();
  auto b = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(1), a.get()).ok());
  ASSERT_TRUE(sketcher->Sketch(RandomVector(2), b.get()).ok());

  EXPECT_TRUE(family->CheckCompatible(*a).ok());
  EXPECT_TRUE(family->CheckCompatible(*b).ok());
  EXPECT_GT(family->StorageWords(*a).value(), 0.0);

  const auto estimate = family->Estimate(*a, *b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_TRUE(std::isfinite(estimate.value()));

  // Sketching is deterministic in (seed, vector): a second pass must agree.
  auto a2 = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(1), a2.get()).ok());
  EXPECT_EQ(family->Serialize(*a).value(), family->Serialize(*a2).value());

  // Clone preserves the payload exactly.
  EXPECT_EQ(family->Serialize(*a->Clone()).value(),
            family->Serialize(*a).value());
}

TEST_P(FamilyRegistryTest, SerializeDeserializeRoundTripIsByteIdentical) {
  auto family = MakeFamily(GetParam().name, SmallOptions()).value();
  auto sketcher = family->MakeSketcher().value();
  auto a = family->NewSketch();
  auto b = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(3), a.get()).ok());
  ASSERT_TRUE(sketcher->Sketch(RandomVector(4), b.get()).ok());
  const double in_memory = family->Estimate(*a, *b).value();

  const std::string bytes_a = family->Serialize(*a).value();
  const std::string bytes_b = family->Serialize(*b).value();
  auto ra = family->Deserialize(bytes_a);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rb = family->Deserialize(bytes_b);
  ASSERT_TRUE(rb.ok());

  // Decoded sketches are compatible, re-encode byte-identically, and
  // estimate to the exact same double (IEEE-754 bit patterns survive).
  EXPECT_TRUE(family->CheckCompatible(*ra.value()).ok());
  EXPECT_EQ(family->Serialize(*ra.value()).value(), bytes_a);
  EXPECT_EQ(family->Estimate(*ra.value(), *rb.value()).value(), in_memory);

  // Malformed bytes are rejected, never misparsed.
  EXPECT_FALSE(family->Deserialize("").ok());
  EXPECT_FALSE(family->Deserialize("not a sketch").ok());
  EXPECT_FALSE(
      family->Deserialize(std::string_view(bytes_a).substr(0, 9)).ok());
}

TEST_P(FamilyRegistryTest, MergeMatchesCapabilityFlag) {
  auto family = MakeFamily(GetParam().name, SmallOptions()).value();
  auto sketcher = family->MakeSketcher().value();
  auto a = family->NewSketch();
  auto b = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(5), a.get()).ok());
  ASSERT_TRUE(sketcher->Sketch(RandomVector(6), b.get()).ok());

  auto merged = family->Merge(*a, *b);
  if (family->supports_merge()) {
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    // The merged sketch estimates against family members like any other.
    EXPECT_TRUE(
        std::isfinite(family->Estimate(*merged.value(), *a).value()));
  } else {
    EXPECT_EQ(merged.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_P(FamilyRegistryTest, TruncateMatchesCapabilityFlag) {
  auto family = MakeFamily(GetParam().name, SmallOptions()).value();
  auto sketcher = family->MakeSketcher().value();
  auto a = family->NewSketch();
  auto b = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(7), a.get()).ok());
  ASSERT_TRUE(sketcher->Sketch(RandomVector(8), b.get()).ok());

  auto truncated = family->Truncate(*a, 16);
  if (family->supports_truncation()) {
    ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
    auto tb = family->Truncate(*b, 16).value();
    EXPECT_TRUE(std::isfinite(
        family->Estimate(*truncated.value(), *tb).value()));
    // Beyond the sketch's own size is out of range.
    EXPECT_EQ(family->Truncate(*a, 1000).status().code(),
              StatusCode::kOutOfRange);
  } else {
    EXPECT_EQ(truncated.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_P(FamilyRegistryTest, RejectsSketchesOfOtherFamilies) {
  const FamilyInfo& info = GetParam();
  auto family = MakeFamily(info.name, SmallOptions()).value();
  // A sketch from some *other* family.
  const std::string other_name = info.name == "wmh" ? "jl" : "wmh";
  auto other = MakeFamily(other_name, SmallOptions()).value();
  auto foreign = other->NewSketch();
  ASSERT_TRUE(
      other->MakeSketcher().value()->Sketch(RandomVector(9), foreign.get())
          .ok());

  EXPECT_EQ(family->CheckCompatible(*foreign).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(family->Estimate(*foreign, *foreign).ok());
  EXPECT_FALSE(family->StorageWords(*foreign).ok());
  EXPECT_FALSE(family->Serialize(*foreign).ok());
  // Another family's wire bytes carry the wrong type tag.
  EXPECT_FALSE(
      family->Deserialize(other->Serialize(*foreign).value()).ok());
  // Sketching into a foreign output sketch is rejected too.
  EXPECT_FALSE(
      family->MakeSketcher().value()->Sketch(RandomVector(1), foreign.get())
          .ok());
}

TEST_P(FamilyRegistryTest, ValidatesCommonOptions) {
  const std::string& name = GetParam().name;

  FamilyOptions no_dimension = SmallOptions();
  no_dimension.dimension = 0;
  EXPECT_EQ(MakeFamily(name, no_dimension).status().code(),
            StatusCode::kInvalidArgument);

  FamilyOptions zero_samples = SmallOptions();
  zero_samples.num_samples = 0;
  EXPECT_FALSE(MakeFamily(name, zero_samples).ok());

  FamilyOptions unknown_param = SmallOptions();
  unknown_param.params["definitely_not_a_knob"] = "1";
  auto made = MakeFamily(name, unknown_param);
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(made.status().message().find("definitely_not_a_knob"),
            std::string::npos);
}

TEST(FamilyRegistryErrorTest, UnknownFamilyNameIsDescriptive) {
  auto made = MakeFamily("simhash_but_wrong", SmallOptions());
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
  // The error lists what IS registered.
  EXPECT_NE(made.status().message().find("wmh"), std::string::npos);
  EXPECT_EQ(GetFamilyInfo("").status().code(), StatusCode::kInvalidArgument);
}

TEST(FamilyRegistryErrorTest, RegistryListsExactlySixFamilies) {
  const auto& families = RegisteredFamilies();
  ASSERT_EQ(families.size(), 6u);
  for (const char* name : {"wmh", "icws", "mh", "kmv", "cs", "jl"}) {
    EXPECT_TRUE(GetFamilyInfo(name).ok()) << name;
  }
}

TEST(FamilyRegistryErrorTest, FamilySpecificParamsAreValidated) {
  // WMH: malformed L, unknown engine.
  FamilyOptions bad_l = SmallOptions();
  bad_l.params["L"] = "not_a_number";
  EXPECT_EQ(MakeFamily("wmh", bad_l).status().code(),
            StatusCode::kInvalidArgument);
  FamilyOptions bad_engine = SmallOptions();
  bad_engine.params["engine"] = "quantum";
  EXPECT_EQ(MakeFamily("wmh", bad_engine).status().code(),
            StatusCode::kInvalidArgument);

  // MH/KMV: unknown hash kind.
  FamilyOptions bad_hash = SmallOptions();
  bad_hash.params["hash"] = "md5";
  EXPECT_EQ(MakeFamily("mh", bad_hash).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeFamily("kmv", bad_hash).status().code(),
            StatusCode::kInvalidArgument);

  // CS: more repetitions than counters leaves zero-width tables.
  FamilyOptions bad_reps = SmallOptions();
  bad_reps.params["repetitions"] = "1000";
  EXPECT_EQ(MakeFamily("cs", bad_reps).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FamilyRegistryErrorTest, WmhResolvesDefaultsIntoItsIdentity) {
  auto family = MakeFamily("wmh", SmallOptions()).value();
  EXPECT_EQ(family->options().params.at("L"),
            std::to_string(DefaultL(kDim)));
  // The fast ingest engine is the default; it is part of the identity.
  EXPECT_EQ(family->options().params.at("engine"), "dart");

  // An explicit L is honored verbatim.
  FamilyOptions with_l = SmallOptions();
  with_l.params["L"] = "2048";
  EXPECT_EQ(MakeFamily("wmh", with_l).value()->options().params.at("L"),
            "2048");

  // Explicit engines are honored and resolved into the identity.
  FamilyOptions with_engine = SmallOptions();
  with_engine.params["engine"] = "active_index";
  EXPECT_EQ(MakeFamily("wmh", with_engine)
                .value()
                ->options()
                .params.at("engine"),
            "active_index");
}

TEST(FamilyRegistryErrorTest, IcwsResolvesEngineAndLIntoItsIdentity) {
  // Default: the dart engine with a resolved L.
  auto family = MakeFamily("icws", SmallOptions()).value();
  EXPECT_EQ(family->options().params.at("engine"), "dart");
  EXPECT_EQ(family->options().params.at("L"),
            std::to_string(DefaultL(kDim)));

  // The exact engine carries no L in its identity and rejects one.
  FamilyOptions exact = SmallOptions();
  exact.params["engine"] = "icws";
  auto exact_family = MakeFamily("icws", exact).value();
  EXPECT_EQ(exact_family->options().params.at("engine"), "icws");
  EXPECT_EQ(exact_family->options().params.count("L"), 0u);
  exact.params["L"] = "2048";
  EXPECT_EQ(MakeFamily("icws", exact).status().code(),
            StatusCode::kInvalidArgument);

  // Unknown engines are rejected, never silently defaulted.
  FamilyOptions bad = SmallOptions();
  bad.params["engine"] = "quantum";
  EXPECT_EQ(MakeFamily("icws", bad).status().code(),
            StatusCode::kInvalidArgument);

  // Sketches from families with different engines are mutually
  // incompatible even at equal (m, seed, dimension).
  auto dart_sketch = family->NewSketch();
  ASSERT_TRUE(family->MakeSketcher()
                  .value()
                  ->Sketch(RandomVector(1), dart_sketch.get())
                  .ok());
  EXPECT_EQ(exact_family->CheckCompatible(*dart_sketch).code(),
            StatusCode::kInvalidArgument);
}

TEST(FamilyOptionsWireTest, EncodeDecodeRoundTrips) {
  FamilyOptions options = SmallOptions();
  options.params["L"] = "4096";
  options.params["engine"] = "active_index";
  std::string bytes;
  AppendFamilyOptions(&bytes, options);

  // Decode through the public reader path used by persistence.
  FamilyOptions decoded;
  {
    wire::Reader r(bytes);
    ASSERT_TRUE(ReadFamilyOptions(&r, &decoded).ok());
    ASSERT_TRUE(r.ExpectEnd().ok());
  }
  EXPECT_EQ(decoded, options);

  // Truncated options bytes are rejected.
  {
    wire::Reader r(std::string_view(bytes).substr(0, bytes.size() - 2));
    FamilyOptions scratch;
    EXPECT_FALSE(ReadFamilyOptions(&r, &scratch).ok());
  }

  EXPECT_NE(FamilyOptionsToString(options).find("L=4096"),
            std::string::npos);
}

}  // namespace
}  // namespace ipsketch
