#include "sketch/family.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rounding.h"
#include "data/synthetic.h"
#include "sketch/quantize.h"
#include "sketch/serialize.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDim = 512;

SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDim, 24, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDim, std::move(entries));
}

FamilyOptions SmallOptions() {
  FamilyOptions options;
  options.dimension = kDim;
  options.num_samples = 64;
  options.seed = 42;
  return options;
}

/// A value-parameterized fixture running every registered family through
/// the same assertions.
class FamilyRegistryTest : public ::testing::TestWithParam<FamilyInfo> {};

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyRegistryTest,
    ::testing::ValuesIn(RegisteredFamilies()),
    [](const ::testing::TestParamInfo<FamilyInfo>& info) {
      return info.param.name;
    });

TEST_P(FamilyRegistryTest, MetadataIsConsistent) {
  const FamilyInfo& info = GetParam();
  auto family = MakeFamily(info.name, SmallOptions()).value();
  EXPECT_EQ(family->name(), info.name);
  EXPECT_EQ(family->display_name(), info.display_name);
  EXPECT_EQ(family->storage_class(), info.storage);
  EXPECT_EQ(family->supports_merge(), info.supports_merge);
  EXPECT_EQ(family->supports_truncation(), info.supports_truncation);
  EXPECT_EQ(family->options().dimension, kDim);
  EXPECT_EQ(family->options().num_samples, 64u);
  EXPECT_EQ(family->options().seed, 42u);
}

TEST_P(FamilyRegistryTest, SketchEstimateIsFiniteAndCompatible) {
  auto family = MakeFamily(GetParam().name, SmallOptions()).value();
  auto sketcher = family->MakeSketcher().value();
  auto a = family->NewSketch();
  auto b = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(1), a.get()).ok());
  ASSERT_TRUE(sketcher->Sketch(RandomVector(2), b.get()).ok());

  EXPECT_TRUE(family->CheckCompatible(*a).ok());
  EXPECT_TRUE(family->CheckCompatible(*b).ok());
  EXPECT_GT(family->StorageWords(*a).value(), 0.0);

  const auto estimate = family->Estimate(*a, *b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_TRUE(std::isfinite(estimate.value()));

  // Sketching is deterministic in (seed, vector): a second pass must agree.
  auto a2 = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(1), a2.get()).ok());
  EXPECT_EQ(family->Serialize(*a).value(), family->Serialize(*a2).value());

  // Clone preserves the payload exactly.
  EXPECT_EQ(family->Serialize(*a->Clone()).value(),
            family->Serialize(*a).value());
}

TEST_P(FamilyRegistryTest, SerializeDeserializeRoundTripIsByteIdentical) {
  auto family = MakeFamily(GetParam().name, SmallOptions()).value();
  auto sketcher = family->MakeSketcher().value();
  auto a = family->NewSketch();
  auto b = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(3), a.get()).ok());
  ASSERT_TRUE(sketcher->Sketch(RandomVector(4), b.get()).ok());
  const double in_memory = family->Estimate(*a, *b).value();

  const std::string bytes_a = family->Serialize(*a).value();
  const std::string bytes_b = family->Serialize(*b).value();
  auto ra = family->Deserialize(bytes_a);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rb = family->Deserialize(bytes_b);
  ASSERT_TRUE(rb.ok());

  // Decoded sketches are compatible, re-encode byte-identically, and
  // estimate to the exact same double (IEEE-754 bit patterns survive).
  EXPECT_TRUE(family->CheckCompatible(*ra.value()).ok());
  EXPECT_EQ(family->Serialize(*ra.value()).value(), bytes_a);
  EXPECT_EQ(family->Estimate(*ra.value(), *rb.value()).value(), in_memory);

  // Malformed bytes are rejected, never misparsed.
  EXPECT_FALSE(family->Deserialize("").ok());
  EXPECT_FALSE(family->Deserialize("not a sketch").ok());
  EXPECT_FALSE(
      family->Deserialize(std::string_view(bytes_a).substr(0, 9)).ok());
}

TEST_P(FamilyRegistryTest, MergeMatchesCapabilityFlag) {
  auto family = MakeFamily(GetParam().name, SmallOptions()).value();
  auto sketcher = family->MakeSketcher().value();
  auto a = family->NewSketch();
  auto b = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(5), a.get()).ok());
  ASSERT_TRUE(sketcher->Sketch(RandomVector(6), b.get()).ok());

  auto merged = family->Merge(*a, *b);
  if (family->supports_merge()) {
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    // The merged sketch estimates against family members like any other.
    EXPECT_TRUE(
        std::isfinite(family->Estimate(*merged.value(), *a).value()));
  } else {
    EXPECT_EQ(merged.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_P(FamilyRegistryTest, TruncateMatchesCapabilityFlag) {
  auto family = MakeFamily(GetParam().name, SmallOptions()).value();
  auto sketcher = family->MakeSketcher().value();
  auto a = family->NewSketch();
  auto b = family->NewSketch();
  ASSERT_TRUE(sketcher->Sketch(RandomVector(7), a.get()).ok());
  ASSERT_TRUE(sketcher->Sketch(RandomVector(8), b.get()).ok());

  auto truncated = family->Truncate(*a, 16);
  if (family->supports_truncation()) {
    ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
    auto tb = family->Truncate(*b, 16).value();
    EXPECT_TRUE(std::isfinite(
        family->Estimate(*truncated.value(), *tb).value()));
    // Beyond the sketch's own size is out of range.
    EXPECT_EQ(family->Truncate(*a, 1000).status().code(),
              StatusCode::kOutOfRange);
  } else {
    EXPECT_EQ(truncated.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_P(FamilyRegistryTest, RejectsSketchesOfOtherFamilies) {
  const FamilyInfo& info = GetParam();
  auto family = MakeFamily(info.name, SmallOptions()).value();
  // A sketch from some *other* family.
  const std::string other_name = info.name == "wmh" ? "jl" : "wmh";
  auto other = MakeFamily(other_name, SmallOptions()).value();
  auto foreign = other->NewSketch();
  ASSERT_TRUE(
      other->MakeSketcher().value()->Sketch(RandomVector(9), foreign.get())
          .ok());

  EXPECT_EQ(family->CheckCompatible(*foreign).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(family->Estimate(*foreign, *foreign).ok());
  EXPECT_FALSE(family->StorageWords(*foreign).ok());
  EXPECT_FALSE(family->Serialize(*foreign).ok());
  // Another family's wire bytes carry the wrong type tag.
  EXPECT_FALSE(
      family->Deserialize(other->Serialize(*foreign).value()).ok());
  // Sketching into a foreign output sketch is rejected too.
  EXPECT_FALSE(
      family->MakeSketcher().value()->Sketch(RandomVector(1), foreign.get())
          .ok());
}

TEST_P(FamilyRegistryTest, ValidatesCommonOptions) {
  const std::string& name = GetParam().name;

  FamilyOptions no_dimension = SmallOptions();
  no_dimension.dimension = 0;
  EXPECT_EQ(MakeFamily(name, no_dimension).status().code(),
            StatusCode::kInvalidArgument);

  FamilyOptions zero_samples = SmallOptions();
  zero_samples.num_samples = 0;
  EXPECT_FALSE(MakeFamily(name, zero_samples).ok());

  FamilyOptions unknown_param = SmallOptions();
  unknown_param.params["definitely_not_a_knob"] = "1";
  auto made = MakeFamily(name, unknown_param);
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(made.status().message().find("definitely_not_a_knob"),
            std::string::npos);
}

TEST(FamilyRegistryErrorTest, UnknownFamilyNameIsDescriptive) {
  auto made = MakeFamily("simhash_but_wrong", SmallOptions());
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
  // The error lists what IS registered.
  EXPECT_NE(made.status().message().find("wmh"), std::string::npos);
  EXPECT_EQ(GetFamilyInfo("").status().code(), StatusCode::kInvalidArgument);
}

TEST(FamilyRegistryErrorTest, RegistryListsExactlyEightFamilies) {
  const auto& families = RegisteredFamilies();
  ASSERT_EQ(families.size(), 8u);
  for (const char* name : {"wmh", "icws", "mh", "kmv", "cs", "jl",
                           "wmh_compact", "wmh_bbit"}) {
    EXPECT_TRUE(GetFamilyInfo(name).ok()) << name;
  }
}

TEST(FamilyRegistryErrorTest, FamilySpecificParamsAreValidated) {
  // WMH: malformed L, unknown engine.
  FamilyOptions bad_l = SmallOptions();
  bad_l.params["L"] = "not_a_number";
  EXPECT_EQ(MakeFamily("wmh", bad_l).status().code(),
            StatusCode::kInvalidArgument);
  FamilyOptions bad_engine = SmallOptions();
  bad_engine.params["engine"] = "quantum";
  EXPECT_EQ(MakeFamily("wmh", bad_engine).status().code(),
            StatusCode::kInvalidArgument);

  // MH/KMV: unknown hash kind.
  FamilyOptions bad_hash = SmallOptions();
  bad_hash.params["hash"] = "md5";
  EXPECT_EQ(MakeFamily("mh", bad_hash).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeFamily("kmv", bad_hash).status().code(),
            StatusCode::kInvalidArgument);

  // CS: more repetitions than counters leaves zero-width tables.
  FamilyOptions bad_reps = SmallOptions();
  bad_reps.params["repetitions"] = "1000";
  EXPECT_EQ(MakeFamily("cs", bad_reps).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FamilyRegistryErrorTest, WmhResolvesDefaultsIntoItsIdentity) {
  auto family = MakeFamily("wmh", SmallOptions()).value();
  EXPECT_EQ(family->options().params.at("L"),
            std::to_string(DefaultL(kDim)));
  // The fast ingest engine is the default; it is part of the identity.
  EXPECT_EQ(family->options().params.at("engine"), "dart");

  // An explicit L is honored verbatim.
  FamilyOptions with_l = SmallOptions();
  with_l.params["L"] = "2048";
  EXPECT_EQ(MakeFamily("wmh", with_l).value()->options().params.at("L"),
            "2048");

  // Explicit engines are honored and resolved into the identity.
  FamilyOptions with_engine = SmallOptions();
  with_engine.params["engine"] = "active_index";
  EXPECT_EQ(MakeFamily("wmh", with_engine)
                .value()
                ->options()
                .params.at("engine"),
            "active_index");
}

TEST(FamilyRegistryErrorTest, IcwsResolvesEngineAndLIntoItsIdentity) {
  // Default: the dart engine with a resolved L.
  auto family = MakeFamily("icws", SmallOptions()).value();
  EXPECT_EQ(family->options().params.at("engine"), "dart");
  EXPECT_EQ(family->options().params.at("L"),
            std::to_string(DefaultL(kDim)));

  // The exact engine carries no L in its identity and rejects one.
  FamilyOptions exact = SmallOptions();
  exact.params["engine"] = "icws";
  auto exact_family = MakeFamily("icws", exact).value();
  EXPECT_EQ(exact_family->options().params.at("engine"), "icws");
  EXPECT_EQ(exact_family->options().params.count("L"), 0u);
  exact.params["L"] = "2048";
  EXPECT_EQ(MakeFamily("icws", exact).status().code(),
            StatusCode::kInvalidArgument);

  // Unknown engines are rejected, never silently defaulted.
  FamilyOptions bad = SmallOptions();
  bad.params["engine"] = "quantum";
  EXPECT_EQ(MakeFamily("icws", bad).status().code(),
            StatusCode::kInvalidArgument);

  // Sketches from families with different engines are mutually
  // incompatible even at equal (m, seed, dimension).
  auto dart_sketch = family->NewSketch();
  ASSERT_TRUE(family->MakeSketcher()
                  .value()
                  ->Sketch(RandomVector(1), dart_sketch.get())
                  .ok());
  EXPECT_EQ(exact_family->CheckCompatible(*dart_sketch).code(),
            StatusCode::kInvalidArgument);
}

TEST(QuantizedFamilyTest, CompactFamiliesResolveWmhIdentity) {
  // Both quantized encodings resolve the same {L, engine} identity as the
  // full-precision family they shadow, so a compactified catalog's options
  // line up field for field with its source.
  for (const char* name : {"wmh_compact", "wmh_bbit"}) {
    auto family = MakeFamily(name, SmallOptions()).value();
    EXPECT_EQ(family->options().params.at("L"),
              std::to_string(DefaultL(kDim)))
        << name;
    EXPECT_EQ(family->options().params.at("engine"), "dart") << name;
  }
  // The b-bit width defaults to 16 and is resolved into the identity.
  auto bbit = MakeFamily("wmh_bbit", SmallOptions()).value();
  EXPECT_EQ(bbit->options().params.at("bits"), "16");

  FamilyOptions eight = SmallOptions();
  eight.params["bits"] = "8";
  EXPECT_EQ(MakeFamily("wmh_bbit", eight).value()->options().params.at(
                "bits"),
            "8");
}

TEST(QuantizedFamilyTest, BbitWidthOutsideRangeIsRejected) {
  for (const char* bad : {"0", "33", "not_a_number", ""}) {
    FamilyOptions options = SmallOptions();
    options.params["bits"] = bad;
    EXPECT_EQ(MakeFamily("wmh_bbit", options).status().code(),
              StatusCode::kInvalidArgument)
        << "bits=" << bad;
  }
  // 'bits' is not a knob of the 32-bit compact encoding (or of wmh).
  FamilyOptions stray = SmallOptions();
  stray.params["bits"] = "16";
  EXPECT_EQ(MakeFamily("wmh_compact", stray).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeFamily("wmh", stray).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuantizedFamilyTest, CrossEngineCompactSketchesAreRejected) {
  // The headline regression: quantization must carry the engine, and the
  // family must enforce engine equality exactly as full-precision WMH does.
  FamilyOptions dart = SmallOptions();
  dart.params["engine"] = "dart";
  FamilyOptions active = SmallOptions();
  active.params["engine"] = "active_index";
  for (const char* name : {"wmh_compact", "wmh_bbit"}) {
    auto dart_family = MakeFamily(name, dart).value();
    auto active_family = MakeFamily(name, active).value();
    auto from_dart = dart_family->NewSketch();
    auto from_active = active_family->NewSketch();
    ASSERT_TRUE(dart_family->MakeSketcher()
                    .value()
                    ->Sketch(RandomVector(1), from_dart.get())
                    .ok());
    ASSERT_TRUE(active_family->MakeSketcher()
                    .value()
                    ->Sketch(RandomVector(1), from_active.get())
                    .ok());
    // Same vector, same seed/L/m — only the engine differs. Both the
    // insert-time guard and the estimator must reject the pair.
    EXPECT_EQ(dart_family->CheckCompatible(*from_active).code(),
              StatusCode::kInvalidArgument)
        << name;
    const auto estimate = dart_family->Estimate(*from_dart, *from_active);
    EXPECT_EQ(estimate.status().code(), StatusCode::kInvalidArgument)
        << name;
    EXPECT_NE(estimate.status().message().find("engine"), std::string::npos)
        << name;
  }
}

TEST(QuantizedFamilyTest, OversizeFingerprintsAreRejectedAtInsertTime) {
  // The wire decoder rejects fingerprints wider than the declared b; the
  // insert-time guard must enforce the same invariant, or a store could
  // persist a file its own decoder refuses to reopen.
  auto family = MakeFamily("wmh_bbit", SmallOptions()).value();
  auto sketch = family->NewSketch();
  ASSERT_TRUE(family->MakeSketcher()
                  .value()
                  ->Sketch(RandomVector(1), sketch.get())
                  .ok());
  ASSERT_TRUE(family->CheckCompatible(*sketch).ok());
  auto* typed = GetMutableSketchAs<BbitWmhSketch>(sketch.get());
  ASSERT_NE(typed, nullptr);
  typed->fingerprints[0] = 0x10000u;  // bits 16..: outside b = 16
  const Status st = family->CheckCompatible(*sketch);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("width"), std::string::npos);
}

TEST(QuantizedFamilyTest, QuantizeWmhSketchConvertsAndValidates) {
  auto wmh = MakeFamily("wmh", SmallOptions()).value();
  auto compact = MakeFamily("wmh_compact", SmallOptions()).value();
  auto full = wmh->NewSketch();
  ASSERT_TRUE(
      wmh->MakeSketcher().value()->Sketch(RandomVector(3), full.get()).ok());

  auto quantized = QuantizeWmhSketch(*compact, *full);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  EXPECT_TRUE(compact->CheckCompatible(*quantized.value()).ok());
  // The conversion is exactly what the family's own sketcher produces.
  auto direct = compact->NewSketch();
  ASSERT_TRUE(compact->MakeSketcher()
                  .value()
                  ->Sketch(RandomVector(3), direct.get())
                  .ok());
  EXPECT_EQ(compact->Serialize(*quantized.value()).value(),
            compact->Serialize(*direct).value());

  // A full sketch with a different identity is rejected, never relabeled.
  FamilyOptions other_seed = SmallOptions();
  other_seed.seed = 99;
  auto wmh99 = MakeFamily("wmh", other_seed).value();
  auto full99 = wmh99->NewSketch();
  ASSERT_TRUE(wmh99->MakeSketcher()
                  .value()
                  ->Sketch(RandomVector(3), full99.get())
                  .ok());
  EXPECT_EQ(QuantizeWmhSketch(*compact, *full99).status().code(),
            StatusCode::kInvalidArgument);
  // Non-quantized targets and non-WMH inputs are rejected.
  EXPECT_EQ(QuantizeWmhSketch(*wmh, *full).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QuantizeWmhSketch(*compact, *quantized.value()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuantizedFamilyTest, ResidentWordsHalveUnderCompaction) {
  auto wmh = MakeFamily("wmh", SmallOptions()).value();
  auto compact = MakeFamily("wmh_compact", SmallOptions()).value();
  auto bbit = MakeFamily("wmh_bbit", SmallOptions()).value();
  auto full = wmh->NewSketch();
  ASSERT_TRUE(
      wmh->MakeSketcher().value()->Sketch(RandomVector(5), full.get()).ok());
  auto small = QuantizeWmhSketch(*compact, *full).value();
  auto tiny = QuantizeWmhSketch(*bbit, *full).value();

  // m = 64: full-precision resident = 2m+1 = 129 words (the §5 accounting
  // charges 1.5m+1 = 97); compact resident = accounting = m+1 = 65.
  EXPECT_DOUBLE_EQ(wmh->StorageWords(*full).value(), 97.0);
  EXPECT_DOUBLE_EQ(wmh->ResidentWords(*full).value(), 129.0);
  EXPECT_DOUBLE_EQ(compact->StorageWords(*small).value(), 65.0);
  EXPECT_DOUBLE_EQ(compact->ResidentWords(*small).value(), 65.0);
  // b = 16: accounting (16+32)/64·m+1 = 49; resident stays one u32+f32
  // word per sample.
  EXPECT_DOUBLE_EQ(bbit->StorageWords(*tiny).value(), 49.0);
  EXPECT_DOUBLE_EQ(bbit->ResidentWords(*tiny).value(), 65.0);

  // The acceptance ratio: a compact catalog is at most 0.52× the resident
  // footprint of the full-precision one.
  EXPECT_LE(compact->ResidentWords(*small).value() /
                wmh->ResidentWords(*full).value(),
            0.52);
}

TEST(FamilyOptionsWireTest, EncodeDecodeRoundTrips) {
  FamilyOptions options = SmallOptions();
  options.params["L"] = "4096";
  options.params["engine"] = "active_index";
  std::string bytes;
  AppendFamilyOptions(&bytes, options);

  // Decode through the public reader path used by persistence.
  FamilyOptions decoded;
  {
    wire::BoundedReader r(bytes);
    ASSERT_TRUE(ReadFamilyOptions(&r, &decoded).ok());
    ASSERT_TRUE(r.ExpectEnd().ok());
  }
  EXPECT_EQ(decoded, options);

  // Truncated options bytes are rejected.
  {
    wire::BoundedReader r(
        std::string_view(bytes).substr(0, bytes.size() - 2));
    FamilyOptions scratch;
    EXPECT_FALSE(ReadFamilyOptions(&r, &scratch).ok());
  }

  EXPECT_NE(FamilyOptionsToString(options).find("L=4096"),
            std::string::npos);
}

}  // namespace
}  // namespace ipsketch
