// End-to-end integration tests: miniature versions of the paper's three
// experiments (Figures 4-6) plus the full dataset-search pipeline, wired
// through the same harness the bench binaries use.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/newsgroups.h"
#include "data/synthetic.h"
#include "data/worldbank.h"
#include "expt/harness.h"
#include "table/join.h"
#include "table/sketch_index.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

// --- Figure 4 in miniature: synthetic sweep, WMH wins at low overlap. -----

TEST(Figure4Integration, LowOverlapOrderingSamplingBeatsLinear) {
  SyntheticPairOptions gen;
  gen.dimension = 10000;
  gen.nnz = 800;
  gen.overlap = 0.05;
  gen.seed = 41;
  const auto raw_pairs = GenerateSyntheticPairs(gen, 3).value();
  std::vector<EvalPair> pairs;
  for (const auto& p : raw_pairs) pairs.push_back({p.a, p.b});

  auto methods = MakeStandardEvaluators();
  SweepOptions sweep;
  sweep.storage_words = {400};
  sweep.trials = 6;
  sweep.seed = 43;
  const auto result = RunStorageSweep(methods, pairs, sweep).value();

  const double jl = result.mean_errors[0][0];
  const double cs = result.mean_errors[1][0];
  const double wmh = result.mean_errors[4][0];
  // The paper's Figure 4(a,b): at ≤5% overlap the WMH error is far below
  // both linear sketches.
  EXPECT_LT(wmh, 0.5 * jl);
  EXPECT_LT(wmh, 0.5 * cs);
}

TEST(Figure4Integration, HighOverlapLinearComparable) {
  SyntheticPairOptions gen;
  gen.dimension = 10000;
  gen.nnz = 800;
  gen.overlap = 0.5;
  gen.seed = 47;
  const auto raw_pairs = GenerateSyntheticPairs(gen, 3).value();
  std::vector<EvalPair> pairs;
  for (const auto& p : raw_pairs) pairs.push_back({p.a, p.b});

  auto methods = MakeStandardEvaluators();
  SweepOptions sweep;
  sweep.storage_words = {400};
  sweep.trials = 6;
  sweep.seed = 53;
  const auto result = RunStorageSweep(methods, pairs, sweep).value();

  const double jl = result.mean_errors[0][0];
  const double wmh = result.mean_errors[4][0];
  // Figure 4(d): at 50% overlap linear sketching is comparable — WMH is not
  // allowed to be an order of magnitude worse.
  EXPECT_LT(wmh, 5.0 * jl + 0.05);
}

// --- Figure 5 in miniature: winning table on the World-Bank stand-in. -----

TEST(Figure5Integration, WinningTableLowOverlapFavorsWmh) {
  WorldBankOptions wb;
  wb.num_datasets = 14;
  wb.columns_per_dataset = 2;
  wb.key_universe = 6000;
  wb.min_rows = 150;
  wb.max_rows = 900;
  wb.seed = 59;
  const auto corpus = GenerateWorldBankCorpus(wb).value();
  const auto samples = SampleColumnPairs(corpus, 6000, 60, 61).value();

  std::vector<EvalPair> pairs;
  std::vector<double> kurtoses;
  for (const auto& s : samples) {
    pairs.push_back({s.a, s.b});
    kurtoses.push_back(s.kurtosis);
  }
  auto methods = MakeStandardEvaluators();
  auto obs = ComputePairErrors(methods, pairs, 400, 2, 67).value();
  for (size_t i = 0; i < obs.size(); ++i) {
    obs[i].overlap = samples[i].overlap;
    obs[i].kurtosis = kurtoses[i];
  }
  // WMH (index 4) vs JL (index 0), bucketed as in Figure 5.
  const auto table =
      BuildWinningTable(obs, 4, 0, {0.25, 0.5, 0.75}, {10.0});

  // Mean difference over all *low-overlap* observations must favor WMH.
  double low_overlap_diff = 0.0;
  size_t low_n = 0;
  for (const auto& o : obs) {
    if (o.overlap <= 0.25) {
      low_overlap_diff += o.errors[4] - o.errors[0];
      ++low_n;
    }
  }
  ASSERT_GT(low_n, 5u);
  EXPECT_LT(low_overlap_diff / static_cast<double>(low_n), 0.0);
  // And the table plumbing recorded every observation somewhere.
  size_t total = 0;
  for (const auto& row : table.count) {
    for (size_t c : row) total += c;
  }
  EXPECT_EQ(total, obs.size());
}

// --- Figure 6 in miniature: TF-IDF cosine estimation on synthetic text. ---

TEST(Figure6Integration, SamplingSketchesBeatLinearOnTfIdf) {
  NewsgroupsOptions ng;
  ng.num_documents = 60;
  ng.vocab_size = 4000;
  ng.num_topics = 5;
  ng.seed = 71;
  const auto corpus = GenerateNewsgroupsCorpus(ng).value();

  FeatureOptions fo;
  std::vector<std::vector<uint64_t>> docs;
  for (const auto& d : corpus) docs.push_back(IdFeatures(d.token_ids, fo));
  TfidfVectorizer vectorizer;
  const auto vectors = vectorizer.FitTransform(docs).value();

  std::vector<EvalPair> pairs;
  for (size_t i = 0; i + 1 < vectors.size() && pairs.size() < 25; i += 2) {
    pairs.push_back({vectors[i], vectors[i + 1]});
  }
  auto methods = MakeStandardEvaluators();
  SweepOptions sweep;
  sweep.storage_words = {200};
  sweep.trials = 3;
  sweep.seed = 73;
  const auto result = RunStorageSweep(methods, pairs, sweep).value();
  const double jl = result.mean_errors[0][0];
  const double mh = result.mean_errors[2][0];
  const double wmh = result.mean_errors[4][0];
  // Figure 6: at small budgets Weighted MinHash dominates linear
  // projections on sparse TF-IDF vectors, and — because Zipfian term
  // frequencies make the vectors heavy-tailed, as in the paper's
  // long-document split (Fig. 6b) — it is also no worse than unweighted MH.
  EXPECT_LT(wmh, jl);
  EXPECT_LE(wmh, mh * 1.2);
}

// --- §1.2 pipeline: sketch-based dataset search finds the weather table. --

TEST(DatasetSearchIntegration, TaxiWeatherScenario) {
  // The paper's motivating example: a taxi-rides table, searched against a
  // catalog containing a correlated weather table and unrelated tables.
  Xoshiro256StarStar rng(79);
  std::vector<uint64_t> days;
  std::vector<double> rides, precip, unrelated;
  for (uint64_t d = 0; d < 365; ++d) {
    days.push_back(20220000 + d);
    const double rain = std::max(0.0, rng.NextGaussian() + 0.5);
    precip.push_back(rain);
    rides.push_back(100000.0 - 20000.0 * rain + 3000.0 * rng.NextGaussian());
    unrelated.push_back(rng.NextGaussian() * 5.0);
  }
  const auto taxi = KeyedColumn::MakeOrDie("taxi.rides", days, rides);
  const auto weather =
      Table::MakeOrDie("weather", days, {"precipitation"}, {precip});

  // An unrelated table over a disjoint key range (different year).
  std::vector<uint64_t> other_days;
  for (uint64_t d = 0; d < 365; ++d) other_days.push_back(20190000 + d);
  const auto stocks =
      Table::MakeOrDie("stocks", other_days, {"returns"}, {unrelated});

  ColumnSketchOptions opt;
  opt.num_samples = 384;
  opt.seed = 83;
  opt.key_domain = 30000000;
  SketchIndex index(opt);
  ASSERT_TRUE(index.AddTable(weather).ok());
  ASSERT_TRUE(index.AddTable(stocks).ok());

  const auto hits = index.Search(taxi, RankBy::kAbsCorrelation, 2).value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].column_name, "weather.precipitation");
  // Rain suppresses ridership: the standardized estimate must be negative.
  EXPECT_LT(hits[0].stats.standardized_correlation, 0.0);

  // Cross-check the estimated join statistics against the exact join.
  const auto exact =
      ComputeJoinStats(taxi, weather.Column("precipitation").value()).value();
  EXPECT_NEAR(hits[0].stats.size, static_cast<double>(exact.size),
              0.3 * static_cast<double>(exact.size));
}

}  // namespace
}  // namespace ipsketch
