#include "common/status.h"

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryConstructors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  // Constructing a Result from an OK status is a programming error that is
  // downgraded to an Internal error rather than a crash.
  Result<int> r(Status::Ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailsThen(Status inner) {
  IPS_RETURN_IF_ERROR(inner);
  return Status::Ok();
}

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThen(Status::Ok()).ok());
  Status s = FailsThen(Status::OutOfRange("deep"));
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.message(), "deep");
}

TEST(MacroTest, CheckPassesOnTrue) {
  IPS_CHECK(1 + 1 == 2);  // must not abort
  SUCCEED();
}

TEST(StatusDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(IPS_CHECK(false), "IPS_CHECK failed");
}

TEST(StatusDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_DEATH(r.value(), "gone");
}

}  // namespace
}  // namespace ipsketch
