#include "sketch/kmv.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector RangeVector(uint64_t dim, uint64_t lo, uint64_t hi,
                         double value = 1.0) {
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) entries.push_back({i, value});
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

KmvSketch Sketch(const SparseVector& v, size_t k, uint64_t seed) {
  KmvOptions o;
  o.k = k;
  o.seed = seed;
  return SketchKmv(v, o).value();
}

TEST(KmvOptionsTest, Validation) {
  KmvOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.k = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(KmvSketchTest, KeepsKSmallestSorted) {
  const auto v = RangeVector(4096, 0, 500);
  const auto s = Sketch(v, 64, 3);
  ASSERT_EQ(s.samples.size(), 64u);
  for (size_t i = 1; i < s.samples.size(); ++i) {
    EXPECT_LT(s.samples[i - 1].hash, s.samples[i].hash);
  }
  EXPECT_FALSE(s.exhaustive());
  EXPECT_DOUBLE_EQ(s.StorageWords(), 96.0);
}

TEST(KmvSketchTest, SmallSupportIsExhaustive) {
  const auto v = RangeVector(128, 0, 10);
  const auto s = Sketch(v, 64, 3);
  EXPECT_EQ(s.samples.size(), 10u);
  EXPECT_TRUE(s.exhaustive());
}

TEST(KmvSketchTest, SketchIsPrefixStable) {
  // The k smallest of a vector contain the k' < k smallest: truncation is a
  // valid re-capacitation.
  const auto v = RangeVector(4096, 0, 500);
  const auto big = Sketch(v, 128, 5);
  const auto small = Sketch(v, 32, 5);
  const auto trunc = TruncatedKmv(big, 32);
  ASSERT_EQ(trunc.samples.size(), small.samples.size());
  for (size_t i = 0; i < small.samples.size(); ++i) {
    EXPECT_EQ(trunc.samples[i].hash, small.samples[i].hash);
  }
}

TEST(KmvEstimatorTest, CompatibilityChecks) {
  const auto v = RangeVector(64, 0, 32);
  EXPECT_FALSE(
      EstimateKmvInnerProduct(Sketch(v, 8, 1), Sketch(v, 16, 1)).ok());
  EXPECT_FALSE(
      EstimateKmvInnerProduct(Sketch(v, 8, 1), Sketch(v, 8, 2)).ok());
}

TEST(KmvEstimatorTest, ExhaustiveSketchesAreExact) {
  // Both supports below k: the estimate is the exact inner product.
  Xoshiro256StarStar rng(7);
  std::vector<Entry> ea, eb;
  for (uint64_t i = 0; i < 20; ++i) ea.push_back({i, rng.NextGaussian()});
  for (uint64_t i = 10; i < 30; ++i) eb.push_back({i, rng.NextGaussian()});
  const auto a = SparseVector::MakeOrDie(64, ea);
  const auto b = SparseVector::MakeOrDie(64, eb);
  const double est =
      EstimateKmvInnerProduct(Sketch(a, 64, 3), Sketch(b, 64, 3)).value();
  EXPECT_NEAR(est, Dot(a, b), 1e-9);
}

TEST(KmvEstimatorTest, UnionEstimateViaKthMinimum) {
  // Feed the estimator binary vectors: the estimate is then
  // Û/(k'−1)·|matches below ζ| ≈ |A∩B|, so checking the estimate checks
  // the union calibration too.
  const auto a = RangeVector(8192, 0, 1000);
  const auto b = RangeVector(8192, 500, 1500);  // intersection 500
  double est_sum = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum += EstimateKmvInnerProduct(Sketch(a, 256, seed),
                                       Sketch(b, 256, seed))
                   .value();
  }
  EXPECT_NEAR(est_sum / kSeeds, 500.0, 50.0);
}

TEST(KmvEstimatorTest, DisjointSupportsEstimateZero) {
  const auto a = RangeVector(4096, 0, 500, 2.0);
  const auto b = RangeVector(4096, 1000, 1500, 3.0);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    EXPECT_EQ(EstimateKmvInnerProduct(Sketch(a, 64, seed),
                                      Sketch(b, 64, seed))
                  .value(),
              0.0);
  }
}

TEST(KmvEstimatorTest, EmptyVectorEstimatesZero) {
  const auto v = RangeVector(64, 0, 32);
  SparseVector zero = SparseVector::FromDense(std::vector<double>(64, 0.0));
  EXPECT_EQ(
      EstimateKmvInnerProduct(Sketch(v, 16, 1), Sketch(zero, 16, 1)).value(),
      0.0);
}

TEST(KmvEstimatorTest, WeightedVectorsAccuracy) {
  Xoshiro256StarStar rng(11);
  std::vector<Entry> ea, eb;
  for (uint64_t i = 0; i < 600; ++i) {
    ea.push_back({i, 0.5 + rng.NextUnit()});
  }
  for (uint64_t i = 300; i < 900; ++i) {
    eb.push_back({i, 0.5 + rng.NextUnit()});
  }
  const auto a = SparseVector::MakeOrDie(4096, ea);
  const auto b = SparseVector::MakeOrDie(4096, eb);
  const double truth = Dot(a, b);
  double err = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    err += std::fabs(EstimateKmvInnerProduct(Sketch(a, 256, seed),
                                             Sketch(b, 256, seed))
                         .value() -
                     truth);
  }
  // Scaled error of a 256-sample sketch on this workload is a few percent.
  EXPECT_LT(err / kSeeds / (a.Norm() * b.Norm()), 0.1);
}

TEST(KmvEstimatorTest, ErrorDecreasesWithK) {
  const auto a = RangeVector(8192, 0, 1000);
  const auto b = RangeVector(8192, 500, 1500);
  const double truth = Dot(a, b);
  double err32 = 0.0, err512 = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    err32 += std::fabs(
        EstimateKmvInnerProduct(Sketch(a, 32, seed), Sketch(b, 32, seed))
            .value() -
        truth);
    err512 += std::fabs(
        EstimateKmvInnerProduct(Sketch(a, 512, seed), Sketch(b, 512, seed))
            .value() -
        truth);
  }
  EXPECT_LT(err512, err32 / 1.8);
}

TEST(TruncatedKmvDeathTest, RejectsBadCapacity) {
  const auto v = RangeVector(128, 0, 64);
  const auto s = Sketch(v, 16, 1);
  EXPECT_DEATH(TruncatedKmv(s, 0), "IPS_CHECK");
  EXPECT_DEATH(TruncatedKmv(s, 17), "IPS_CHECK");
}

}  // namespace
}  // namespace ipsketch
