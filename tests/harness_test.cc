#include "expt/harness.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace ipsketch {
namespace {

std::vector<EvalPair> SmallPairs(size_t count, double overlap) {
  SyntheticPairOptions o;
  o.dimension = 1500;
  o.nnz = 200;
  o.overlap = overlap;
  o.seed = 17;
  const auto pairs = GenerateSyntheticPairs(o, count).value();
  std::vector<EvalPair> out;
  for (const auto& p : pairs) out.push_back({p.a, p.b});
  return out;
}

TEST(SweepOptionsTest, Validation) {
  SweepOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.trials = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = SweepOptions();
  o.storage_words.clear();
  EXPECT_FALSE(o.Validate().ok());
  o = SweepOptions();
  o.storage_words = {100.0, -5.0};
  EXPECT_FALSE(o.Validate().ok());
}

TEST(StorageSweepTest, ShapeOfResult) {
  auto methods = MakeStandardEvaluators();
  SweepOptions o;
  o.storage_words = {60, 120, 240};
  o.trials = 2;
  const auto result =
      RunStorageSweep(methods, SmallPairs(2, 0.3), o).value();
  ASSERT_EQ(result.method_names.size(), 5u);
  ASSERT_EQ(result.storage_words.size(), 3u);
  ASSERT_EQ(result.mean_errors.size(), 5u);
  for (const auto& row : result.mean_errors) {
    ASSERT_EQ(row.size(), 3u);
    for (double e : row) {
      EXPECT_GE(e, 0.0);
      EXPECT_TRUE(std::isfinite(e));
    }
  }
}

TEST(StorageSweepTest, ErrorsShrinkWithStorageOnAverage) {
  auto methods = MakeStandardEvaluators();
  SweepOptions o;
  o.storage_words = {45, 600};
  o.trials = 4;
  const auto result =
      RunStorageSweep(methods, SmallPairs(3, 0.4), o).value();
  for (size_t mi = 0; mi < result.method_names.size(); ++mi) {
    EXPECT_LT(result.mean_errors[mi][1], result.mean_errors[mi][0] * 1.1)
        << result.method_names[mi];
  }
}

TEST(StorageSweepTest, EmptyInputsRejected) {
  auto methods = MakeStandardEvaluators();
  SweepOptions o;
  EXPECT_FALSE(RunStorageSweep(methods, {}, o).ok());
  std::vector<std::unique_ptr<MethodEvaluator>> none;
  EXPECT_FALSE(RunStorageSweep(none, SmallPairs(1, 0.5), o).ok());
}

TEST(PairErrorsTest, PerPairErrorsAndCovariates) {
  auto methods = MakeStandardEvaluators();
  const auto pairs = SmallPairs(4, 0.25);
  const auto obs = ComputePairErrors(methods, pairs, 150, 2, 3).value();
  ASSERT_EQ(obs.size(), 4u);
  for (const auto& pe : obs) {
    ASSERT_EQ(pe.errors.size(), 5u);
    EXPECT_NEAR(pe.overlap, 0.25, 0.05);
    for (double e : pe.errors) EXPECT_GE(e, 0.0);
  }
}

TEST(WinningTableTest, BucketsAndMeans) {
  std::vector<PairErrors> obs;
  // Two observations in the low/low bucket, one in high/high.
  obs.push_back({.overlap = 0.1, .kurtosis = 2.0, .errors = {0.5, 0.3}});
  obs.push_back({.overlap = 0.2, .kurtosis = 2.5, .errors = {0.1, 0.3}});
  obs.push_back({.overlap = 0.9, .kurtosis = 50.0, .errors = {0.4, 0.1}});
  const auto table = BuildWinningTable(obs, /*target=*/0, /*baseline=*/1,
                                       {0.5}, {10.0});
  ASSERT_EQ(table.diff.size(), 2u);
  ASSERT_EQ(table.diff[0].size(), 2u);
  EXPECT_EQ(table.count[0][0], 2u);
  EXPECT_NEAR(table.diff[0][0], ((0.5 - 0.3) + (0.1 - 0.3)) / 2.0, 1e-12);
  EXPECT_EQ(table.count[1][1], 1u);
  EXPECT_NEAR(table.diff[1][1], 0.3, 1e-12);
  EXPECT_EQ(table.count[0][1], 0u);
  EXPECT_EQ(table.count[1][0], 0u);
}

TEST(WinningTableTest, EdgeValuesGoToLowerBucket) {
  std::vector<PairErrors> obs;
  obs.push_back({.overlap = 0.5, .kurtosis = 10.0, .errors = {1.0, 0.0}});
  const auto table = BuildWinningTable(obs, 0, 1, {0.5}, {10.0});
  EXPECT_EQ(table.count[0][0], 1u);  // x ≤ edge goes low
}

TEST(WinningTableTest, NegativeDiffMeansTargetWins) {
  std::vector<PairErrors> obs;
  obs.push_back({.overlap = 0.1, .kurtosis = 1.0, .errors = {0.1, 0.9}});
  const auto table = BuildWinningTable(obs, 0, 1, {0.5}, {10.0});
  EXPECT_LT(table.diff[0][0], 0.0);
}

}  // namespace
}  // namespace ipsketch
