#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rounding.h"
#include "core/similarity_search.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "service/metrics.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"
#include "sketch/count_sketch.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDim = 512;

SketchStoreOptions SmallStoreOptions(const std::string& family = "wmh") {
  SketchStoreOptions opts;
  opts.family = family;
  opts.sketch.dimension = kDim;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  opts.num_shards = 8;
  return opts;
}

// The concrete WMH options a "wmh" store resolves to — used to rebuild
// store-compatible sketches through the core API for equivalence checks.
WmhOptions StoreWmhOptions(const SketchStore& store) {
  WmhOptions options;
  options.num_samples = store.options().sketch.num_samples;
  options.seed = store.options().sketch.seed;
  options.L = std::stoull(store.options().sketch.params.at("L"));
  return options;
}

// A deterministic random sparse vector with ~24 non-zeros.
SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDim, 24, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDim, std::move(entries));
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(), [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
    }
    // Destruction drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

// Regression: ParallelFor called from inside a pool task used to deadlock —
// the worker blocked on completion while its subtasks waited in the queue
// behind it. Reentrant calls now run inline on the worker.
TEST(ThreadPoolTest, NestedParallelForFromWorkerRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> counts(64);
  std::atomic<int> outer_done{0};
  ASSERT_TRUE(pool.Submit([&] {
    pool.ParallelFor(counts.size(), [&](size_t i) { counts[i].fetch_add(1); });
    outer_done.fetch_add(1);
  }));
  // Deeper nesting: ParallelFor bodies (which run on workers) calling
  // ParallelFor again.
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(counts.size(), [&](size_t i) { counts[i].fetch_add(1); });
  });
  pool.ParallelFor(0, [&](size_t) {});  // degenerate sizes stay safe
  // Quiesce the submitted task (destruction drains, but assert before).
  while (outer_done.load() == 0) std::this_thread::yield();
  for (const auto& c : counts) EXPECT_EQ(c.load(), 5);
}

// Regression: Submit used to IPS_CHECK-abort the process when a task still
// draining during destruction submitted follow-up work. It must reject
// (return false) instead, while every *accepted* task still runs.
TEST(ThreadPoolTest, SubmitDuringShutdownIsRejectedNotFatal) {
  std::atomic<bool> rejected{false};
  std::atomic<int> accepted_ran{0};
  {
    ThreadPool pool(1);
    ASSERT_TRUE(pool.Submit([&] {
      // Keep resubmitting until the destructor (running concurrently on
      // the main thread) flips the pool to stopping. Accepted follow-ups
      // are legitimate pre-stop work and must all run during the drain.
      while (pool.Submit([&] { accepted_ran.fetch_add(1); })) {
        std::this_thread::yield();
      }
      rejected.store(true);
    }));
    // Leaving the scope destroys the pool while the task above still runs.
  }
  EXPECT_TRUE(rejected.load());
  EXPECT_GE(accepted_ran.load(), 0);
}

// A pool mid-shutdown must still complete a ParallelFor instead of hanging
// on rejected submissions: the caller runs the iterations inline.
TEST(ThreadPoolTest, ParallelForDuringShutdownCompletesInline) {
  std::atomic<int> total{0};
  std::atomic<bool> parallel_for_done{false};
  std::thread caller;
  {
    ThreadPool pool(2);
    std::atomic<bool> draining{false};
    // This task pins one worker — and with it the destructor's join, so the
    // pool provably outlives the concurrent ParallelFor — until that
    // ParallelFor has completed. Its submissions race the stop flag: either
    // accepted (the second worker runs them) or rejected (the caller runs
    // the iterations inline); both must complete the loop.
    ASSERT_TRUE(pool.Submit([&] {
      draining.store(true);
      while (!parallel_for_done.load()) std::this_thread::yield();
    }));
    caller = std::thread([&] {
      while (!draining.load()) std::this_thread::yield();
      pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
      parallel_for_done.store(true);
    });
    while (!draining.load()) std::this_thread::yield();
  }
  caller.join();
  EXPECT_TRUE(parallel_for_done.load());
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsDoNotInterfere) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      pool.ParallelFor(100, [&](size_t) { total.fetch_add(1); });
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 400);
}

TEST(SketchStoreTest, ValidatesOptions) {
  SketchStoreOptions opts = SmallStoreOptions();
  opts.sketch.dimension = 0;
  EXPECT_FALSE(SketchStore::Make(opts).ok());
  opts = SmallStoreOptions();
  opts.num_shards = 0;
  EXPECT_FALSE(SketchStore::Make(opts).ok());
  opts = SmallStoreOptions();
  opts.sketch.num_samples = 0;
  EXPECT_FALSE(SketchStore::Make(opts).ok());
  opts = SmallStoreOptions();
  opts.family = "no_such_family";
  EXPECT_FALSE(SketchStore::Make(opts).ok());
  opts = SmallStoreOptions();
  opts.sketch.params["unknown_knob"] = "3";
  EXPECT_FALSE(SketchStore::Make(opts).ok());
}

TEST(SketchStoreTest, ResolvesDefaultLOnce) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  EXPECT_EQ(store.options().sketch.params.at("L"),
            std::to_string(DefaultL(kDim)));
  EXPECT_EQ(StoreWmhOptions(store).L, DefaultL(kDim));
}

TEST(SketchStoreTest, InsertLookupEraseRoundTrip) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  ASSERT_TRUE(store.BuildAndInsert(7, RandomVector(1)).ok());
  EXPECT_TRUE(store.Contains(7));
  EXPECT_FALSE(store.Contains(8));
  EXPECT_EQ(store.size(), 1u);

  auto sketch = store.Lookup(7);
  ASSERT_TRUE(sketch.ok());
  const WmhSketch* wmh = GetSketchAs<WmhSketch>(*sketch.value());
  ASSERT_NE(wmh, nullptr);
  EXPECT_EQ(wmh->num_samples(), 64u);
  EXPECT_EQ(store.Lookup(8).status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(store.Erase(7).ok());
  EXPECT_FALSE(store.Contains(7));
  EXPECT_EQ(store.Erase(7).code(), StatusCode::kNotFound);
}

TEST(SketchStoreTest, RejectsIncompatibleSketchesAndVectors) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();

  WmhOptions other = StoreWmhOptions(store);
  other.seed = 99;  // different seed → not comparable
  auto sketch = SketchWmh(RandomVector(1), other).value();
  EXPECT_EQ(store
                .Insert(1, std::make_unique<TypedSketch<WmhSketch>>(
                               std::move(sketch)))
                .code(),
            StatusCode::kInvalidArgument);

  // A sketch of a different family entirely.
  EXPECT_EQ(store.Insert(1, std::make_unique<TypedSketch<CountSketch>>())
                .code(),
            StatusCode::kInvalidArgument);

  const SparseVector wrong_dim =
      SparseVector::MakeOrDie(kDim * 2, {{3, 1.0}});
  EXPECT_EQ(store.BuildAndInsert(1, wrong_dim).code(),
            StatusCode::kInvalidArgument);
}

TEST(SketchStoreTest, BatchIngestMatchesSerialIngest) {
  std::vector<std::pair<uint64_t, SparseVector>> batch;
  for (uint64_t i = 0; i < 64; ++i) batch.push_back({i, RandomVector(i)});

  auto serial = SketchStore::Make(SmallStoreOptions()).value();
  ASSERT_TRUE(serial.BuildAndInsertBatch(batch, nullptr).ok());

  ThreadPool pool(4);
  auto parallel = SketchStore::Make(SmallStoreOptions()).value();
  ASSERT_TRUE(parallel.BuildAndInsertBatch(batch, &pool).ok());

  ASSERT_EQ(serial.size(), batch.size());
  ASSERT_EQ(parallel.size(), batch.size());
  // Engines are deterministic in (seed, sample, block), so parallel and
  // serial ingest must produce bit-identical sketches.
  const auto a = serial.Snapshot();
  const auto b = parallel.Snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    const WmhSketch* sa = GetSketchAs<WmhSketch>(*a[i].sketch);
    const WmhSketch* sb = GetSketchAs<WmhSketch>(*b[i].sketch);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    EXPECT_EQ(sa->hashes, sb->hashes);
    EXPECT_EQ(sa->values, sb->values);
    EXPECT_EQ(sa->norm, sb->norm);
  }
}

TEST(SketchStoreTest, DuplicateIdsLastWriteWins) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  ASSERT_TRUE(store.BuildAndInsert(5, RandomVector(1)).ok());
  ASSERT_TRUE(store.BuildAndInsert(5, RandomVector(2)).ok());
  EXPECT_EQ(store.size(), 1u);
  const auto expected = SketchWmh(RandomVector(2), StoreWmhOptions(store));
  const auto looked_up = store.Lookup(5).value();
  const WmhSketch* wmh = GetSketchAs<WmhSketch>(*looked_up);
  ASSERT_NE(wmh, nullptr);
  EXPECT_EQ(wmh->hashes, expected.value().hashes);
}

TEST(QueryEngineTest, EstimateInnerProductMatchesDirectEstimator) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  ASSERT_TRUE(store.BuildAndInsert(1, RandomVector(1)).ok());
  ASSERT_TRUE(store.BuildAndInsert(2, RandomVector(2)).ok());

  QueryEngine engine(&store);
  // The service path must agree exactly with the core WMH estimator on
  // sketches built directly through the core API.
  const WmhOptions core_options = StoreWmhOptions(store);
  const auto direct = EstimateWmhInnerProduct(
      SketchWmh(RandomVector(1), core_options).value(),
      SketchWmh(RandomVector(2), core_options).value());
  EXPECT_EQ(engine.EstimateInnerProduct(1, 2).value(), direct.value());
  EXPECT_EQ(engine.EstimateInnerProduct(1, 99).status().code(),
            StatusCode::kNotFound);
}

TEST(QueryEngineTest, EstimateAgainstQueryCoversWholeStoreSortedById) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i * 3, RandomVector(i)).ok());
  }
  ThreadPool pool(4);
  QueryEngine engine(&store, &pool);
  const auto hits = engine.EstimateAgainstQuery(RandomVector(1000)).value();
  ASSERT_EQ(hits.size(), 40u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].id, i * 3);
    if (i > 0) {
      EXPECT_LT(hits[i - 1].id, hits[i].id);
    }
  }
}

TEST(QueryEngineTest, ParallelTopKMatchesSerialTopK) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i, RandomVector(i)).ok());
  }
  const SparseVector query = RandomVector(5000);

  QueryEngine serial(&store, nullptr);
  ThreadPool pool(4);
  QueryEngine parallel(&store, &pool);

  for (size_t k : {1u, 7u, 50u, 500u}) {
    const auto a = serial.TopK(query, k).value();
    const auto b = parallel.TopK(query, k).value();
    ASSERT_EQ(a.size(), b.size()) << "k=" << k;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "k=" << k << " i=" << i;
      EXPECT_EQ(a[i].estimate, b[i].estimate);
    }
  }
}

TEST(QueryEngineTest, TopKRanksByEstimate) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i, RandomVector(i)).ok());
  }
  QueryEngine engine(&store);
  const SparseVector query = RandomVector(3);  // id 3 holds the same vector
  const auto hits = engine.TopK(query, 10).value();
  ASSERT_EQ(hits.size(), 10u);
  EXPECT_EQ(hits[0].id, 3u);  // self-similarity dominates
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].estimate, hits[i].estimate);
  }
  // Every estimate agrees with the full scan.
  const auto all = engine.EstimateAgainstQuery(query).value();
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.estimate, all[hit.id].estimate);
  }
}

TEST(QueryEngineTest, RejectsMismatchedQueries) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  ASSERT_TRUE(store.BuildAndInsert(1, RandomVector(1)).ok());
  QueryEngine engine(&store);

  EXPECT_EQ(engine
                .TopK(SparseVector::MakeOrDie(kDim * 2, {{0, 1.0}}), 3)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  WmhOptions other = StoreWmhOptions(store);
  other.seed ^= 1;
  const TypedSketch<WmhSketch> foreign(
      SketchWmh(RandomVector(9), other).value());
  EXPECT_EQ(engine.TopKSketch(foreign, 3).status().code(),
            StatusCode::kInvalidArgument);

  // A query sketch of the wrong family is rejected, not mis-estimated.
  EXPECT_EQ(engine.TopKSketch(TypedSketch<CountSketch>(), 3).status().code(),
            StatusCode::kInvalidArgument);
}

// The same QueryEngine code serving a different family: a CountSketch store
// must produce exactly the estimates of the direct CountSketch estimator.
TEST(QueryEngineTest, CountSketchStoreMatchesDirectEstimator) {
  auto store = SketchStore::Make(SmallStoreOptions("cs")).value();
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i, RandomVector(i)).ok());
  }
  QueryEngine engine(&store);

  CountSketchOptions cs_options;
  cs_options.total_counters = store.options().sketch.num_samples;
  cs_options.seed = store.options().sketch.seed;
  const SparseVector query = RandomVector(900);
  const auto query_cs = SketchCount(query, cs_options).value();

  const auto hits = engine.EstimateAgainstQuery(query).value();
  ASSERT_EQ(hits.size(), 30u);
  for (const auto& hit : hits) {
    const auto direct = EstimateCountSketchInnerProduct(
        query_cs, SketchCount(RandomVector(hit.id), cs_options).value());
    EXPECT_EQ(hit.estimate, direct.value()) << "id " << hit.id;
  }
}

// Every registered family must work end to end through the generic store:
// ingest, point estimates, and top-k retrieval.
TEST(QueryEngineTest, AllFamiliesServeTopK) {
  for (const FamilyInfo& info : RegisteredFamilies()) {
    auto store = SketchStore::Make(SmallStoreOptions(info.name)).value();
    for (uint64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(store.BuildAndInsert(i, RandomVector(i)).ok())
          << info.name;
    }
    QueryEngine engine(&store);
    const auto hits = engine.TopK(RandomVector(7), 5).value();
    ASSERT_EQ(hits.size(), 5u) << info.name;
    // id 7 holds the query vector itself; self-similarity dominates for
    // every method at this sketch size.
    EXPECT_EQ(hits[0].id, 7u) << info.name;
  }
}

// --- compact catalogs --------------------------------------------------------

TEST(CompactCatalogTest, CompactifyInPlaceHalvesResidentStorage) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i, RandomVector(i)).ok());
  }
  const double full_resident = store.TotalResidentWords();
  const double full_storage = store.TotalStorageWords();
  std::vector<double> before;
  {
    QueryEngine engine(&store);
    for (uint64_t i = 1; i < 30; ++i) {
      before.push_back(engine.EstimateInnerProduct(0, i).value());
    }
  }

  ASSERT_TRUE(store.CompactifyInPlace("wmh_compact").ok());
  EXPECT_EQ(store.family().name(), "wmh_compact");
  EXPECT_EQ(store.options().family, "wmh_compact");
  // The quantized family inherits the resolved identity of its source.
  EXPECT_EQ(store.options().sketch.params.at("engine"), "dart");
  EXPECT_EQ(store.size(), 30u);
  // The acceptance ratio: the resident catalog is at most 0.52× its
  // full-precision footprint (§5 accounting shrinks too: 1·m+1 words per
  // sketch instead of 1.5·m+1).
  EXPECT_LE(store.TotalResidentWords() / full_resident, 0.52);
  EXPECT_LT(store.TotalStorageWords(), full_storage);

  // Point and top-k estimates run unchanged through the family interface,
  // within quantization distance (float32 values, 32-bit hashes) of the
  // full-precision estimates.
  QueryEngine engine(&store);
  for (uint64_t i = 1; i < 30; ++i) {
    EXPECT_NEAR(engine.EstimateInnerProduct(0, i).value(), before[i - 1],
                1e-3)
        << "pair (0, " << i << ")";
  }
  const auto hits = engine.TopK(RandomVector(7), 5).value();
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0].id, 7u);  // self-similarity survives quantization

  // A second compaction is refused: the store no longer holds "wmh".
  EXPECT_EQ(store.CompactifyInPlace("wmh_compact").code(),
            StatusCode::kFailedPrecondition);
}

TEST(CompactCatalogTest, QuantizeStoreMatchesInPlaceAndKeepsSource) {
  auto source = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(source.BuildAndInsert(i * 3, RandomVector(i)).ok());
  }

  auto compact = QuantizeStore(source, "wmh_compact");
  ASSERT_TRUE(compact.ok()) << compact.status().ToString();
  // The source is untouched; the copy holds the same ids.
  EXPECT_EQ(source.family().name(), "wmh");
  EXPECT_EQ(source.size(), 25u);
  EXPECT_EQ(compact.value().Ids(), source.Ids());

  // Out-of-place and in-place conversions agree sketch for sketch.
  ASSERT_TRUE(source.CompactifyInPlace("wmh_compact").ok());
  const auto ids = source.Ids();
  for (uint64_t id : ids) {
    EXPECT_EQ(source.family()
                  .Serialize(*compact.value().Lookup(id).value())
                  .value(),
              source.family().Serialize(*source.Lookup(id).value()).value())
        << "id " << id;
  }
}

TEST(CompactCatalogTest, BbitCompactionShrinksAccountingFurther) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i, RandomVector(i)).ok());
  }
  const double full_storage = store.TotalStorageWords();
  ASSERT_TRUE(store.CompactifyInPlace("wmh_bbit", {{"bits", "8"}}).ok());
  EXPECT_EQ(store.family().name(), "wmh_bbit");
  EXPECT_EQ(store.options().sketch.params.at("bits"), "8");
  // (8+32)/64 = 0.625 words/sample vs 1.5: under half the §5 accounting.
  EXPECT_LT(store.TotalStorageWords() / full_storage, 0.5);

  QueryEngine engine(&store);
  const auto hits = engine.TopK(RandomVector(3), 5).value();
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0].id, 3u);
}

TEST(CompactCatalogTest, CompactionErrorPaths) {
  // A non-WMH store cannot be compactified.
  auto cs_store = SketchStore::Make(SmallStoreOptions("cs")).value();
  ASSERT_TRUE(cs_store.BuildAndInsert(1, RandomVector(1)).ok());
  EXPECT_EQ(cs_store.CompactifyInPlace("wmh_compact").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(QuantizeStore(cs_store, "wmh_compact").status().code(),
            StatusCode::kFailedPrecondition);

  // Targets must be quantized WMH encodings, and their params must parse.
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  ASSERT_TRUE(store.BuildAndInsert(1, RandomVector(1)).ok());
  EXPECT_EQ(store.CompactifyInPlace("wmh").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.CompactifyInPlace("definitely_not_a_family").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.CompactifyInPlace("wmh_bbit", {{"bits", "64"}}).code(),
            StatusCode::kInvalidArgument);
  // Every failure left the store unchanged.
  EXPECT_EQ(store.family().name(), "wmh");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(QueryEngine(&store).EstimateInnerProduct(1, 1).ok());
}

TEST(CompactCatalogTest, InsertRejectsCrossEngineCompactSketch) {
  // The insert-time guard inherits the engine check: a compact catalog
  // resolved to one engine refuses sketches quantized from another.
  auto opts = SmallStoreOptions("wmh_compact");
  opts.sketch.params["engine"] = "active_index";
  auto store = SketchStore::Make(opts).value();

  FamilyOptions dart_options = store.options().sketch;
  dart_options.params["engine"] = "dart";
  auto dart_family = MakeFamily("wmh_compact", dart_options).value();
  auto sketch = dart_family->NewSketch();
  ASSERT_TRUE(dart_family->MakeSketcher()
                  .value()
                  ->Sketch(RandomVector(1), sketch.get())
                  .ok());
  EXPECT_EQ(store.Insert(1, std::move(sketch)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.size(), 0u);
}

// The satellite stress test: 8 writer threads ingest disjoint id ranges
// while 4 reader threads hammer TopK / lookups. Afterwards, nothing may be
// lost and a concurrent-pool TopK must match a from-scratch serial
// recompute.
TEST(SketchServiceStressTest, ConcurrentIngestAndQuery) {
  constexpr size_t kWriters = 8;
  constexpr size_t kReaders = 4;
  constexpr size_t kPerWriter = 40;

  auto store = SketchStore::Make(SmallStoreOptions()).value();
  ThreadPool pool(4);
  QueryEngine engine(&store, &pool);
  const SparseVector query = RandomVector(777);

  std::atomic<bool> stop{false};
  std::atomic<size_t> insert_failures{0};
  std::atomic<size_t> reader_errors{0};

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        const uint64_t id = w * kPerWriter + i;
        if (!store.BuildAndInsert(id, RandomVector(id)).ok()) {
          insert_failures.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t rounds = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Serial engines only inside reader threads: the shared pool is for
        // the final parallel checks (ParallelFor must not nest in workers).
        QueryEngine local(&store, nullptr);
        auto hits = local.TopK(query, 5);
        if (!hits.ok()) reader_errors.fetch_add(1);
        auto lookup = store.Lookup(r);  // may be NotFound early; not an error
        if (!lookup.ok() &&
            lookup.status().code() != StatusCode::kNotFound) {
          reader_errors.fetch_add(1);
        }
        ++rounds;
      }
      EXPECT_GT(rounds, 0u);
    });
  }

  for (auto& w : writers) w.join();
  stop.store(true);
  for (auto& r : readers) r.join();

  // No lost inserts: every id present, exactly once.
  EXPECT_EQ(insert_failures.load(), 0u);
  EXPECT_EQ(reader_errors.load(), 0u);
  ASSERT_EQ(store.size(), kWriters * kPerWriter);
  const auto ids = store.Ids();
  ASSERT_EQ(ids.size(), kWriters * kPerWriter);
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);

  // Concurrent-pool TopK over the finished store matches a single-threaded
  // recompute done entirely from scratch via the core brute-force path on
  // concrete WmhSketches — the redesigned, family-generic engine must
  // return exactly what the pre-redesign WMH-only engine returned.
  const auto parallel_hits = engine.TopK(query, 10).value();
  const auto query_sketch =
      SketchWmh(query, StoreWmhOptions(store)).value();
  std::vector<WmhSketch> all;
  std::vector<uint64_t> all_ids;
  for (const auto& entry : store.Snapshot()) {
    const WmhSketch* wmh = GetSketchAs<WmhSketch>(*entry.sketch);
    ASSERT_NE(wmh, nullptr);
    all_ids.push_back(entry.id);
    all.push_back(*wmh);
  }
  const auto expected = TopKByInnerProduct(query_sketch, all, 10).value();
  ASSERT_EQ(parallel_hits.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(parallel_hits[i].id, all_ids[expected[i].index]);
    EXPECT_EQ(parallel_hits[i].estimate, expected[i].estimate);
  }
}

// --- service metrics integration -------------------------------------------
// Metrics are process-wide and monotonic, so these tests assert *deltas*
// around the operation under test, never absolute values.

TEST(ServiceMetricsTest, PoolRejectionIncrementsCounter) {
  if (!metrics::kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  metrics::SetEnabledForTesting(true);
  auto& rejected = metrics::MetricsRegistry::Global().GetCounter(
      "ipsketch_pool_tasks_rejected_total");
  auto& executed = metrics::MetricsRegistry::Global().GetCounter(
      "ipsketch_pool_tasks_executed_total");
  const uint64_t rejected_before = rejected.Value();
  const uint64_t executed_before = executed.Value();
  std::atomic<bool> saw_rejection{false};
  {
    ThreadPool pool(1);
    ASSERT_TRUE(pool.Submit([&] {
      // As in SubmitDuringShutdownIsRejectedNotFatal: resubmit until the
      // destructor flips the pool to stopping and the submit is refused.
      while (pool.Submit([] {})) std::this_thread::yield();
      saw_rejection.store(true);
    }));
  }
  EXPECT_TRUE(saw_rejection.load());
  EXPECT_GE(rejected.Value(), rejected_before + 1);
  EXPECT_GE(executed.Value(), executed_before + 1);
}

TEST(ServiceMetricsTest, StoreOccupancyGaugesTrackLiveSketches) {
  if (!metrics::kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  metrics::SetEnabledForTesting(true);
  auto& registry = metrics::MetricsRegistry::Global();
  auto& size_gauge = registry.GetGauge("ipsketch_store_size");
  auto& inserts = registry.GetCounter("ipsketch_store_inserts_total");
  const int64_t size_before = size_gauge.Value();
  const uint64_t inserts_before = inserts.Value();
  {
    auto store = SketchStore::Make(SmallStoreOptions()).value();
    for (uint64_t id = 0; id < 12; ++id) {
      ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
    }
    // Replacing an id is an insert but not a new live sketch.
    ASSERT_TRUE(store.BuildAndInsert(3, RandomVector(99)).ok());
    EXPECT_EQ(size_gauge.Value(), size_before + 12);
    EXPECT_EQ(inserts.Value(), inserts_before + 13);

    // The per-shard occupancy gauges sum to the store's contribution.
    int64_t shard_total = 0;
    for (size_t s = 0; s < store.num_shards(); ++s) {
      shard_total += registry
                         .GetGauge("ipsketch_store_shard_occupancy{shard=\"" +
                                   std::to_string(s) + "\"}")
                         .Value();
    }
    EXPECT_GE(shard_total, 12);

    ASSERT_TRUE(store.Erase(5).ok());
    EXPECT_EQ(size_gauge.Value(), size_before + 11);
  }
  // Destruction retires the store's whole occupancy contribution.
  EXPECT_EQ(size_gauge.Value(), size_before);
}

TEST(ServiceMetricsTest, QueryTraceCapturesTopKStages) {
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t id = 0; id < 16; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  QueryEngine engine(&store, nullptr);
  metrics::QueryTrace trace;
  const auto hits = engine.TopK(RandomVector(1000), 5, &trace);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_STREQ(trace.span(0).stage, "sketch-query");
  EXPECT_STREQ(trace.span(1).stage, "shard-scan");
  EXPECT_STREQ(trace.span(2).stage, "heap-merge");
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_GT(trace.total_ns(), 0u);

  // Tracing does not change results, and a reused trace must be cleared.
  metrics::QueryTrace reused = trace;
  reused.Clear();
  const auto untraced = engine.TopK(RandomVector(1000), 5).value();
  const auto traced = engine.TopK(RandomVector(1000), 5, &reused).value();
  ASSERT_EQ(traced.size(), untraced.size());
  for (size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].id, untraced[i].id);
    EXPECT_EQ(traced[i].estimate, untraced[i].estimate);
  }
  EXPECT_EQ(reused.size(), 3u);
}

TEST(ServiceMetricsTest, QueryCountersMoveOnTopK) {
  if (!metrics::kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  metrics::SetEnabledForTesting(true);
  auto& registry = metrics::MetricsRegistry::Global();
  auto& queries = registry.GetCounter("ipsketch_query_total");
  auto& scanned = registry.GetCounter("ipsketch_query_sketches_scanned_total");
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  QueryEngine engine(&store, nullptr);
  const uint64_t queries_before = queries.Value();
  const uint64_t scanned_before = scanned.Value();
  ASSERT_TRUE(engine.TopK(RandomVector(77), 3).ok());
  EXPECT_EQ(queries.Value(), queries_before + 1);
  EXPECT_EQ(scanned.Value(), scanned_before + 10);
}

}  // namespace
}  // namespace ipsketch
