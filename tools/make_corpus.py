#!/usr/bin/env python3
"""Generate fuzz seed corpora and mutation dictionaries from golden bytes.

Every locked wire payload in tests/golden_bytes_test.cc (the kGolden*
constants) becomes one seed file under fuzz/corpus/<target>/, so each fuzz
target starts from bytes the decoder is known to accept and mutates from
there instead of fighting the magic/version/tag gate by chance. Legacy v1
payloads (engine-less sketches, the WMH-only store header) are synthesized
here byte-for-byte the way tests/golden_bytes_test.cc builds them, keeping
the v1 compatibility paths seeded too.

Dictionaries under fuzz/dicts/<target>.dict hold the magics, version/tag/
engine bytes, family names, and param keys, so the mutator can splice whole
tokens instead of rediscovering them byte by byte.

Usage:
  tools/make_corpus.py           # (re)write fuzz/corpus/ and fuzz/dicts/
  tools/make_corpus.py --check   # verify checked-in seeds match; exit 1 if not

Stdlib only; tools/lint_invariants.py enforces that every registered wire
tag keeps a fuzz target with a non-empty corpus.
"""

import argparse
import re
import struct
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN_TEST = REPO / "tests" / "golden_bytes_test.cc"
CORPUS_DIR = REPO / "fuzz" / "corpus"
DICTS_DIR = REPO / "fuzz" / "dicts"
REGRESSIONS_DIR = REPO / "fuzz" / "regressions"

# Golden constant -> fuzz target whose corpus it seeds.
GOLDEN_TO_TARGET = {
    "kGoldenWmh": "fuzz_wmh_decode",
    "kGoldenMh": "fuzz_mh_decode",
    "kGoldenKmv": "fuzz_kmv_decode",
    "kGoldenJl": "fuzz_jl_decode",
    "kGoldenCs": "fuzz_cs_decode",
    "kGoldenIcws": "fuzz_icws_decode",
    "kGoldenSimHash": "fuzz_simhash_decode",
    "kGoldenCompactWmh": "fuzz_wmh_compact_decode",
    "kGoldenBbitWmh": "fuzz_wmh_bbit_decode",
    "kGoldenStoreV2Empty": "fuzz_store_decode",
    "kGoldenStoreCompactEmpty": "fuzz_store_decode",
}

SKETCH_MAGIC = 0x49505348  # "IPSH"
STORE_MAGIC = 0x49505354  # "IPST"
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def u8(v):
    return struct.pack("<B", v)


def u32(v):
    return struct.pack("<I", v)


def u64(v):
    return struct.pack("<Q", v)


def f64(v):
    return struct.pack("<d", v)


def wire_bytes(b):
    return u64(len(b)) + b


def fnv1a(data):
    h = FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def parse_golden_constants():
    """Returns {constant name: payload bytes} from golden_bytes_test.cc."""
    text = GOLDEN_TEST.read_text()
    found = {}
    for match in re.finditer(
        r"constexpr\s+char\s+(kGolden\w+)\[\]\s*=\s*((?:\"[0-9a-f]*\"\s*)+);",
        text,
    ):
        name = match.group(1)
        hexdigits = "".join(re.findall(r"\"([0-9a-f]*)\"", match.group(2)))
        found[name] = bytes.fromhex(hexdigits)
    return found


def v1_wmh_payload():
    # Mirrors GoldenBytesTest.LegacyV1WmhBytesDecodeAsActiveIndex.
    out = u32(SKETCH_MAGIC) + u8(1) + u8(1)  # version 1, tag kWmh
    out += u64(7) + u64(4096) + u64(512)  # seed, L, dimension (no engine)
    out += f64(2.5)  # norm
    out += u64(1) + f64(0.5)  # hashes
    out += u64(1) + f64(0.75)  # values
    return out


def v1_icws_payload():
    # Mirrors GoldenBytesTest.LegacyV1IcwsBytesDecodeAsExact.
    out = u32(SKETCH_MAGIC) + u8(1) + u8(6)  # version 1, tag kIcws
    out += u64(7) + u64(512)  # seed, dimension (no engine/L)
    out += f64(2.5)  # norm
    out += u64(1) + u64(42)  # fingerprints
    out += u64(1) + f64(0.75)  # values
    return out


def v1_store_payload():
    # The pre-SketchFamily WMH-only store: fixed header
    # [dimension][num_shards][num_samples][seed][L][engine u8], zero
    # entries, FNV-1a trailer.
    out = u32(STORE_MAGIC) + u8(1)
    out += u64(512) + u64(4) + u64(16) + u64(7) + u64(4096) + u8(0)
    out += u64(0)  # entry count
    return out + u64(fnv1a(out))


def family_options_wire(dimension, num_samples, seed, params):
    out = u64(dimension) + u64(num_samples) + u64(seed)
    out += u64(len(params))
    for key in sorted(params):  # canonical (strictly sorted) order
        out += wire_bytes(key.encode()) + wire_bytes(params[key].encode())
    return out


def synthesized_seeds():
    """Seeds not derivable from a single golden constant."""
    seeds = {
        "fuzz_wmh_decode": {"v1_wmh": v1_wmh_payload()},
        "fuzz_icws_decode": {"v1_icws": v1_icws_payload()},
        "fuzz_store_decode": {"v1_store_empty": v1_store_payload()},
        "fuzz_family_options": {
            # Wire-format options block (the store-header surface).
            "wire_wmh": family_options_wire(
                512, 16, 7, {"L": "4096", "engine": "active_index"}
            ),
            "wire_empty": family_options_wire(512, 16, 7, {}),
        },
    }
    # Text-format seeds (family name, then key=value per line) for the
    # MakeFamily string-parsing surface of the same target.
    for name, text in {
        "text_wmh": "wmh\nL=4096",
        "text_icws": "icws\nL=64\nengine=dart",
        "text_bbit": "wmh_bbit\nbits=8",
        "text_cs": "cs\nrepetitions=3",
        "text_jl": "jl",
        "text_kmv": "kmv",
        "text_mh": "mh",
        "text_compact": "wmh_compact\nL=4096",
    }.items():
        seeds["fuzz_family_options"][name] = text.encode()
    return seeds


def regression_seeds():
    """Inputs that triggered (now fixed) decoder bugs.

    tests/wire_fuzz_regressions.cc replays every file in fuzz/regressions/
    through every decoder under the decode contract and additionally asserts
    each of these specific payloads is rejected. Fuzzer-found crash files
    are checked in here by hand (any filename); only the named seeds below
    are regenerated by this script.
    """
    nan = struct.pack("<Q", 0x7FF8000000000000)  # quiet NaN bit pattern

    def sketch_header(tag):
        return u32(SKETCH_MAGIC) + u8(2) + u8(tag)

    # CountSketch: reps·width formed as a u64 product wrapped to 0 for
    # reps = width = 2^32, passing the old bounds check and then allocating
    # 2^32 tables.
    cs_shape_overflow = (
        sketch_header(5) + u64(0) + u64(0) + u64(1 << 32) + u64(1 << 32)
    )
    # CountSketch: width = 0 rows consume no payload bytes, so the old
    # check let reps = 2^61 empty rows through — unbounded allocation.
    cs_zero_width_rows = (
        sketch_header(5) + u64(0) + u64(0) + u64(1 << 61) + u64(0)
    )
    # SimHash: (num_bits + 63) / 64 wrapped to 0 near 2^64, so an absurd
    # num_bits paired with an empty bits vector decoded silently.
    simhash_numbits_overflow = (
        sketch_header(7)
        + u64(0)  # seed
        + u64(0)  # dimension
        + u64((1 << 64) - 1)  # num_bits
        + f64(1.0)  # norm
        + u64(0)  # bits word count
    )
    # KMV: a NaN hash compared false both ways against the old `<=`
    # sortedness check and slipped into the estimator's match loop.
    kmv_nan_hash = (
        sketch_header(3)
        + u64(0)  # seed
        + u64(0)  # dimension
        + u64(2)  # k
        + u8(0)  # hash kind
        + u64(2)  # sample count
        + nan + f64(0.0)
        + nan + f64(0.0)
    )
    # FamilyOptions wire block: duplicate param keys were silently collapsed
    # by the map insert; non-canonical (unsorted or duplicated) key order is
    # now rejected.
    dup = wire_bytes(b"L") + wire_bytes(b"1")
    family_options_dup_key = u64(512) + u64(16) + u64(7) + u64(2) + dup + dup
    return {
        "cs_shape_overflow": cs_shape_overflow,
        "cs_zero_width_rows": cs_zero_width_rows,
        "simhash_numbits_overflow": simhash_numbits_overflow,
        "kmv_nan_hash": kmv_nan_hash,
        "family_options_dup_key": family_options_dup_key,
    }


def all_seeds():
    """Returns {target: {seed name: bytes}} covering every fuzz target."""
    goldens = parse_golden_constants()
    missing = sorted(set(GOLDEN_TO_TARGET) - set(goldens))
    if missing:
        sys.exit(
            "make_corpus.py: golden constants not found in "
            f"{GOLDEN_TEST.name}: {', '.join(missing)} — update "
            "GOLDEN_TO_TARGET alongside the test"
        )
    seeds = synthesized_seeds()
    for const, target in GOLDEN_TO_TARGET.items():
        name = "golden_" + re.sub(
            r"(?<!^)(?=[A-Z])", "_", const.removeprefix("kGolden")
        ).lower()
        seeds.setdefault(target, {})[name] = goldens[const]
    return seeds


def dict_escape(token):
    out = []
    for byte in token:
        if 0x20 <= byte < 0x7F and byte not in (0x22, 0x5C):
            out.append(chr(byte))
        else:
            out.append(f"\\x{byte:02x}")
    return "".join(out)


def dictionaries():
    """Returns {target: [token bytes, ...]}."""
    sketch_common = [
        b"IPSH",
        u32(SKETCH_MAGIC),
        b"\x01",
        b"\x02",
        u64(0),
        u64(1),
        f64(1.0),
    ]
    engines = [b"\x00", b"\x01"]
    dicts = {}
    for tag, target in {
        1: "fuzz_wmh_decode",
        2: "fuzz_mh_decode",
        3: "fuzz_kmv_decode",
        4: "fuzz_jl_decode",
        5: "fuzz_cs_decode",
        6: "fuzz_icws_decode",
        7: "fuzz_simhash_decode",
        8: "fuzz_wmh_compact_decode",
        9: "fuzz_wmh_bbit_decode",
    }.items():
        tokens = list(sketch_common) + [u8(tag)]
        if tag in (1, 6, 8, 9):  # engine-carrying payloads
            tokens += engines
        dicts[target] = tokens
    family_tokens = [
        b"wmh",
        b"mh",
        b"kmv",
        b"jl",
        b"cs",
        b"icws",
        b"wmh_compact",
        b"wmh_bbit",
        b"L",
        b"engine",
        b"bits",
        b"hash",
        b"repetitions",
        b"dart",
        b"icws",
        b"active_index",
        b"expanded_reference",
        b"=",
        b"\n",
    ]
    dicts["fuzz_store_decode"] = (
        [b"IPST", u32(STORE_MAGIC), b"\x01", b"\x02", u64(0), u64(1)]
        + family_tokens
    )
    dicts["fuzz_family_options"] = [u64(0), u64(1), u64(2)] + family_tokens
    return dicts


def dict_text(tokens):
    lines = ["# generated by tools/make_corpus.py — do not edit"]
    seen = set()
    for token in tokens:
        if token in seen:
            continue
        seen.add(token)
        lines.append(f'"{dict_escape(token)}"')
    return "\n".join(lines) + "\n"


def generate(check):
    seeds = all_seeds()
    dicts = dictionaries()
    problems = []
    written = 0

    def emit(path, data):
        nonlocal written
        if check:
            if not path.exists():
                problems.append(f"missing: {path.relative_to(REPO)}")
            elif path.read_bytes() != data:
                problems.append(f"stale: {path.relative_to(REPO)}")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(data)
            written += 1

    for target in sorted(seeds):
        for name, data in sorted(seeds[target].items()):
            emit(CORPUS_DIR / target / name, data)
    for name, data in sorted(regression_seeds().items()):
        emit(REGRESSIONS_DIR / name, data)
    for target in sorted(dicts):
        emit(DICTS_DIR / (target + ".dict"), dict_text(dicts[target]).encode())

    if check:
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            sys.exit(
                f"make_corpus.py --check: {len(problems)} seed file(s) out "
                "of date — run tools/make_corpus.py and commit the result"
            )
        print("make_corpus.py --check: all generated files up to date")
    else:
        print(
            f"wrote {written} files across {len(seeds)} corpora and "
            f"{len(dicts)} dictionaries"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify generated files match what is on disk (CI mode)",
    )
    generate(parser.parse_args().check)


if __name__ == "__main__":
    main()
