#!/usr/bin/env python3
"""Fails CI when estimate throughput regresses against the committed baseline.

    tools/check_bench_regression.py BASELINE CURRENT [--threshold 0.25]

Compares the `estimate_pairs_per_sec` records of two BENCH_service.json
files (bench/bench_service_throughput.cc) keyed by (family, m). The gated
quantity is each point's *speedup* — the dispatched-kernel rate divided by
the same-run forced-scalar rate. That ratio is measured on one machine in
one process, so it is comparable across runner generations, while absolute
pairs/sec are not (the committed baseline may come from a much slower or
faster box). A point regresses when its current speedup drops more than
THRESHOLD below the baseline's; absolute rates are printed for context
only.

The gate has to tell apart three situations: a genuine kernel regression
(fail), ordinary spread between the baseline machine and the runner's
microarchitecture (pass), and measurement noise on families where the SIMD
win is small (don't gate). Three rules do that:

* --require-kernel NAME (used by CI, where every runner has AVX2) fails
  when the current record's dispatched kernel differs — a mismatch there
  means runtime dispatch itself regressed. Without the flag, differing
  kernels report and exit 0 (speedups across tiers are not comparable,
  e.g. a scalar-only dev box vs an AVX2 baseline).
* Points whose BASELINE speedup is below --gate-min (default 1.75) are
  reported but never gated: a ~1.4x win (icws, wmh_bbit — their scalar
  loops already skip the division on mismatch) is within shared-runner
  noise at the bench's 0.25 s measurement windows, and gating it would
  flake.
* A gated point fails only when BOTH conditions miss: its speedup ratio
  vs baseline dropped below 1 - THRESHOLD (catches same-machine
  regressions tightly), AND its current speedup is below
  max(2.0, baseline/2) (the cross-machine backstop: 8.6x baseline → fail
  under 4.3x). Microarchitectural spread (8.6x vs 6.2x) passes; a 4x
  kernel loss (8.6x → 2.1x) or a dead SIMD path (~1.0x) fails.

Points present on only one side are reported and skipped. Sections of the
record this script does not know about (e.g. "metrics" from
bench_saturation) are ignored; a "saturation" section on both sides adds an
informational — never gating — TopK p99 latency comparison, and a
"saturation_async" section (bench_saturation --frontdoor) adds the same
plus the per-level shed/expired counts. An "index"
section (bench_index) is gated like the estimate points: each
(bands, rows, corpus) point's banded-vs-exact *speedup* is a same-run,
same-machine ratio, so it transfers across runners; it fails only when the
speedup both dropped below 1 - THRESHOLD of the baseline's AND sits below
the max(2.0, baseline/2) backstop. recall@10 is reported informationally —
recall depends only on (b, r) and the corpus, not the machine, but its
acceptance evidence lives in the committed baseline, not in per-run CI
noise. Malformed records produce a one-line error, not a traceback. Exit
status: 0 ok, 1 regression, 2 usage/parse error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def estimate_points(record, path):
    if not isinstance(record, dict):
        print(f"error: {path} is not a JSON object", file=sys.stderr)
        sys.exit(2)
    points = record.get("estimate_pairs_per_sec")
    if not isinstance(points, list):
        print(f"error: {path} has no estimate_pairs_per_sec array",
              file=sys.stderr)
        sys.exit(2)
    out = {}
    for i, p in enumerate(points):
        if not isinstance(p, dict):
            print(f"error: {path}: estimate_pairs_per_sec[{i}] is not an "
                  f"object", file=sys.stderr)
            sys.exit(2)
        missing = [k for k in ("family", "m", "per_sec", "speedup")
                   if k not in p]
        if missing:
            print(f"error: {path}: estimate_pairs_per_sec[{i}] is missing "
                  f"{', '.join(missing)}", file=sys.stderr)
            sys.exit(2)
        out[(p["family"], p["m"])] = p
    return out


def report_saturation(base_record, curr_record, key="saturation"):
    """Informational TopK p99 comparison from a saturation section.

    Never gates: latency percentiles depend on the runner's core count and
    load, so they are printed for trend-watching only. For the async
    section ("saturation_async", bench_saturation --frontdoor) the
    per-level shed/expired counts are printed too — under overload those
    are where the pressure goes instead of into p99. Absent or malformed
    sections on either side are reported and skipped.
    """
    shed_cols = key == "saturation_async"
    curr = curr_record.get(key)
    if not isinstance(curr, dict) or not isinstance(curr.get("levels"), list):
        return
    base = base_record.get(key)
    base_levels = {}
    if isinstance(base, dict) and isinstance(base.get("levels"), list):
        base_levels = {
            lvl.get("offered_concurrency"): lvl
            for lvl in base["levels"] if isinstance(lvl, dict)
        }
    print(f"\n{key} TopK p99 (informational, not gated):")
    header = f"{'offered_conc':>12} {'base p99 us':>12} {'curr p99 us':>12}"
    if shed_cols:
        header += f" {'curr shed':>10} {'curr expired':>13}"
    print(header)
    for lvl in curr["levels"]:
        if not isinstance(lvl, dict):
            continue
        conc = lvl.get("offered_concurrency", "?")
        curr_p99 = lvl.get("topk_p99_us")
        base_lvl = base_levels.get(conc)
        base_p99 = base_lvl.get("topk_p99_us") if base_lvl else None
        base_s = f"{base_p99:>12.0f}" if isinstance(base_p99, (int, float)) \
            else f"{'—':>12}"
        curr_s = f"{curr_p99:>12.0f}" if isinstance(curr_p99, (int, float)) \
            else f"{'—':>12}"
        row = f"{conc:>12} {base_s} {curr_s}"
        if shed_cols:
            row += f" {lvl.get('shed', 0):>10} {lvl.get('expired', 0):>13}"
        print(row)


def index_points(record):
    """The index section's points keyed by (bands, rows, corpus), or {}."""
    section = record.get("index")
    if not isinstance(section, dict) or \
            not isinstance(section.get("points"), list):
        return {}
    out = {}
    for p in section["points"]:
        if not isinstance(p, dict):
            continue
        if any(k not in p for k in ("bands", "rows", "corpus", "speedup")):
            continue
        out[(p["bands"], p["rows"], p["corpus"])] = p
    return out


def report_index(base_record, curr_record, threshold):
    """Gates the banded-index speedup points; returns failure descriptions.

    Same dual rule as the estimate gate: a matched point fails only when its
    speedup ratio vs baseline dropped below 1 - threshold AND its current
    speedup is under max(2.0, baseline/2). Recall@10 is printed but never
    gated (see module docstring). Points on one side only are reported and
    skipped — CI's smoke run matches only the baseline's smoke-sized corpus
    points.
    """
    base = index_points(base_record)
    curr = index_points(curr_record)
    if not curr:
        return []
    print("\nbanded index (gated on speedup; recall informational):")
    print(f"{'bands':>5} {'rows':>5} {'corpus':>8} {'base spdup':>11} "
          f"{'curr spdup':>11} {'ratio':>7} {'base rec':>9} {'curr rec':>9}"
          f"  verdict")
    failed = []
    for key in sorted(set(base) | set(curr)):
        bands, rows, corpus = key
        b_pt, c_pt = base.get(key), curr.get(key)
        b_rec = f"{b_pt['recall_at_10']:>9.4f}" if b_pt and \
            isinstance(b_pt.get("recall_at_10"), (int, float)) else f"{'—':>9}"
        c_rec = f"{c_pt['recall_at_10']:>9.4f}" if c_pt and \
            isinstance(c_pt.get("recall_at_10"), (int, float)) else f"{'—':>9}"
        if c_pt is None:
            print(f"{bands:>5} {rows:>5} {corpus:>8} "
                  f"{b_pt['speedup']:>10.2f}x {'—':>11} {'—':>7} "
                  f"{b_rec} {c_rec}  missing from current (skipped)")
            continue
        if b_pt is None:
            print(f"{bands:>5} {rows:>5} {corpus:>8} {'—':>11} "
                  f"{c_pt['speedup']:>10.2f}x {'—':>7} "
                  f"{b_rec} {c_rec}  new (no baseline)")
            continue
        b, c = b_pt["speedup"], c_pt["speedup"]
        ratio = c / b if b > 0 else float("inf")
        ok = ratio >= 1.0 - threshold or c >= max(2.0, b / 2.0)
        print(f"{bands:>5} {rows:>5} {corpus:>8} {b:>10.2f}x {c:>10.2f}x "
              f"{ratio:>6.2f}x {b_rec} {c_rec}  "
              f"{'ok' if ok else 'REGRESSION'}")
        if not ok:
            failed.append(f"index b={bands},r={rows},n={corpus} "
                          f"({ratio:.2f}x)")
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional speedup drop (default 0.25)")
    parser.add_argument("--require-kernel", default=None,
                        help="fail unless the current record's dispatched "
                             "kernel is NAME (CI: avx2)")
    parser.add_argument("--gate-min", type=float, default=1.75,
                        help="points with baseline speedup below this are "
                             "informational only (default 1.75)")
    args = parser.parse_args()

    base_record = load(args.baseline)
    curr_record = load(args.current)
    base = estimate_points(base_record, args.baseline)
    curr = estimate_points(curr_record, args.current)

    base_kernel = base_record.get("kernel", "?")
    curr_kernel = curr_record.get("kernel", "?")
    print(f"baseline kernel: {base_kernel} "
          f"(hardware_concurrency {base_record.get('hardware_concurrency', '?')})")
    print(f"current  kernel: {curr_kernel} "
          f"(hardware_concurrency {curr_record.get('hardware_concurrency', '?')})")

    if args.require_kernel and curr_kernel != args.require_kernel:
        print(f"\nFAIL: dispatched kernel is '{curr_kernel}', expected "
              f"'{args.require_kernel}' — runtime dispatch regressed",
              file=sys.stderr)
        return 1
    if args.require_kernel and base_kernel != args.require_kernel:
        # A mismatched baseline would otherwise hit the cross-tier skip
        # below and silently disable the gate on every future run.
        print(f"\nFAIL: committed baseline was recorded with kernel "
              f"'{base_kernel}', expected '{args.require_kernel}' — "
              f"regenerate bench/baselines from a matching machine",
              file=sys.stderr)
        return 1

    if base_kernel != curr_kernel:
        print(f"\nSKIP: dispatched kernels differ ({base_kernel} vs "
              f"{curr_kernel}); speedups are not comparable across tiers")
        report_saturation(base_record, curr_record)
        report_saturation(base_record, curr_record, key="saturation_async")
        return 0

    print(f"{'family':<14} {'m':>6} {'current/s':>14} "
          f"{'base speedup':>13} {'curr speedup':>13} {'ratio':>7}  verdict")

    failed = []
    for key in sorted(set(base) | set(curr)):
        family, m = key
        if key not in curr:
            print(f"{family:<14} {m:>6} {'—':>14} {'—':>13} {'—':>13} "
                  f"{'—':>7}  missing from current (skipped)")
            continue
        if key not in base:
            print(f"{family:<14} {m:>6} {curr[key]['per_sec']:>14.0f} "
                  f"{'—':>13} {curr[key]['speedup']:>12.2f}x {'—':>7}  "
                  f"new (no baseline)")
            continue
        b = base[key]["speedup"]
        c = curr[key]["speedup"]
        ratio = c / b if b > 0 else float("inf")
        if b < args.gate_min:
            print(f"{family:<14} {m:>6} {curr[key]['per_sec']:>14.0f} "
                  f"{b:>12.2f}x {c:>12.2f}x {ratio:>6.2f}x  "
                  f"info only (baseline < {args.gate_min:.2f}x)")
            continue
        backstop = max(2.0, b / 2.0)
        ok = ratio >= 1.0 - args.threshold or c >= backstop
        print(f"{family:<14} {m:>6} {curr[key]['per_sec']:>14.0f} "
              f"{b:>12.2f}x {c:>12.2f}x {ratio:>6.2f}x  "
              f"{'ok' if ok else 'REGRESSION'}")
        if not ok:
            failed.append(f"{family}@m={m} ({ratio:.2f}x)")

    failed += report_index(base_record, curr_record, args.threshold)
    report_saturation(base_record, curr_record)
    report_saturation(base_record, curr_record, key="saturation_async")

    if failed:
        print(f"\nFAIL: speedup dropped >{args.threshold:.0%} vs baseline: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"\nOK: no throughput regression beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
