#!/usr/bin/env python3
"""Repo-specific invariant lint — rules no off-the-shelf tool knows.

Six rules, each guarding an invariant the test suite can only probe
point-wise but a static scan can prove tree-wide:

  wire-tags      SketchTypeTag values are unique, every tag has a wire
                 producer (PutHeader) in serialize.cc, and every producer's
                 serializer is locked by tests/golden_bytes_test.cc — a tag
                 without a golden payload can drift silently and corrupt
                 stored catalogs.
  families       Every family in RegisteredFamilies() is exercised by the
                 parameterized family-registry test and has a kernel-backed
                 estimator TU (ActiveKernel() — the EstimateKernel dispatch
                 table), so no family ships outside the scalar/SIMD
                 equivalence net.
  metrics        Every Counter/Gauge/Histogram registration uses an
                 ipsketch_-prefixed snake_case name and appears in README's
                 metric inventory table — the exposition surface is
                 documented or it does not ship.
  raw-mutex      No std::mutex / std::condition_variable / std::lock_guard /
                 std::unique_lock outside src/common/mutex.{h,cc}: every
                 lock goes through the annotated, rank-checked
                 ipsketch::Mutex wrapper.
  fuzz-coverage  Every SketchTypeTag enumerator maps to a fuzz/ harness with
                 a non-empty checked-in seed corpus (plus the store-file and
                 FamilyOptions harnesses) — a wire decoder that is not
                 fuzzed is an untrusted-input surface nobody is probing.
  docs-freshness Every ipsketch_* metric registered in src/ appears in
                 docs/OPERATIONS.md (the operator runbook) and every
                 SketchTypeTag enumerator appears in docs/WIRE_FORMAT.md
                 (the normative wire spec) — the docs/ tree cannot silently
                 rot behind the code.

Exit status 0 iff the tree is clean; findings go to stdout, one per line,
as `rule: file: message`.

`--self-test` copies the tree to a temp dir, seeds one violation per rule,
and verifies each is caught (and that the pristine copy stays clean) —
the lint's own regression test, run in CI next to the real scan.

Stdlib only; no third-party dependencies.
"""

import argparse
import re
import shutil
import sys
import tempfile
from pathlib import Path

SERIALIZE_H = "src/sketch/serialize.h"
SERIALIZE_CC = "src/sketch/serialize.cc"
GOLDEN_TEST = "tests/golden_bytes_test.cc"
FAMILY_CC = "src/sketch/family.cc"
FAMILY_TEST = "tests/family_registry_test.cc"
README = "README.md"
OPERATIONS_MD = "docs/OPERATIONS.md"
WIRE_FORMAT_MD = "docs/WIRE_FORMAT.md"
MUTEX_ALLOWED = {"src/common/mutex.h", "src/common/mutex.cc"}

# family name -> the translation unit holding its kernel-backed estimator.
# A newly registered family must be added here *and* route its estimator
# through ActiveKernel() (the EstimateKernel dispatch table) — the rule
# fails loudly on an unknown name rather than guessing.
FAMILY_ESTIMATOR_TU = {
    "jl": "src/sketch/jl_sketch.cc",
    "cs": "src/sketch/count_sketch.cc",
    "mh": "src/sketch/minhash.cc",
    "kmv": "src/sketch/kmv.cc",
    "wmh": "src/core/wmh_estimator.cc",
    "icws": "src/core/icws.cc",
    "wmh_compact": "src/sketch/quantize.cc",
    "wmh_bbit": "src/sketch/quantize.cc",
}


# SketchTypeTag enumerator -> the fuzz target exercising its decoder. A new
# wire tag must be added here *and* get a harness under fuzz/ plus seeds from
# tools/make_corpus.py — the rule fails loudly on an unknown enumerator
# rather than guessing.
TAG_FUZZ_TARGET = {
    "kWmh": "fuzz_wmh_decode",
    "kMh": "fuzz_mh_decode",
    "kKmv": "fuzz_kmv_decode",
    "kJl": "fuzz_jl_decode",
    "kCountSketch": "fuzz_cs_decode",
    "kIcws": "fuzz_icws_decode",
    "kSimHash": "fuzz_simhash_decode",
    "kCompactWmh": "fuzz_wmh_compact_decode",
    "kBbitWmh": "fuzz_wmh_bbit_decode",
}
# Untrusted-input surfaces beyond the per-tag sketch decoders.
EXTRA_FUZZ_TARGETS = {
    "fuzz_store_decode": "the store-file loader",
    "fuzz_family_options": "FamilyOptions parsing",
}


def read(root: Path, rel: str) -> str:
    return (root / rel).read_text(encoding="utf-8")


def check_wire_tags(root: Path):
    findings = []
    header = read(root, SERIALIZE_H)
    enum_match = re.search(
        r"enum\s+class\s+SketchTypeTag[^{]*\{(.*?)\}", header, re.DOTALL)
    if enum_match is None:
        return [f"wire-tags: {SERIALIZE_H}: SketchTypeTag enum not found"]
    tags = re.findall(r"(k\w+)\s*=\s*(\d+)", enum_match.group(1))
    if not tags:
        return [f"wire-tags: {SERIALIZE_H}: no SketchTypeTag enumerators"]

    seen = {}
    for name, value in tags:
        if value in seen:
            findings.append(
                f"wire-tags: {SERIALIZE_H}: tag {name} reuses wire value "
                f"{value} (already {seen[value]}) — stored payloads become "
                "ambiguous")
        seen.setdefault(value, name)

    # Map each tag to the serializer that emits it: PutHeader(...kTag)
    # inside `std::string SerializeX(...)`.
    impl = read(root, SERIALIZE_CC)
    producers = {}  # tag name -> serializer function name
    for fn_match in re.finditer(r"std::string\s+(Serialize\w+)\(", impl):
        body_start = fn_match.end()
        header_use = re.search(
            r"PutHeader\(\s*&\w+,\s*SketchTypeTag::(k\w+)\s*\)",
            impl[body_start:body_start + 2000])
        if header_use:
            producers.setdefault(header_use.group(1), fn_match.group(1))

    golden = read(root, GOLDEN_TEST)
    for name, _value in tags:
        serializer = producers.get(name)
        if serializer is None:
            findings.append(
                f"wire-tags: {SERIALIZE_CC}: tag {name} has no "
                "PutHeader producer — dead wire value or unregistered "
                "serializer")
        elif serializer not in golden:
            findings.append(
                f"wire-tags: {GOLDEN_TEST}: tag {name} ({serializer}) has "
                "no golden-bytes lock — add a pinned-payload test so the "
                "format cannot drift")
    return findings


def registered_families(root: Path):
    src = read(root, FAMILY_CC)
    fn = re.search(
        r"RegisteredFamilies\(\)\s*\{(.*?)\n\}", src, re.DOTALL)
    if fn is None:
        return None
    return re.findall(r'\{\s*"(\w+)"\s*,\s*"', fn.group(1))


def check_families(root: Path):
    findings = []
    families = registered_families(root)
    if not families:
        return [f"families: {FAMILY_CC}: RegisteredFamilies() not found"]

    test = read(root, FAMILY_TEST)
    # ValuesIn(RegisteredFamilies()) covers every family by construction;
    # an explicit list must name each one.
    if "ValuesIn(RegisteredFamilies())" not in test:
        for family in families:
            if f'"{family}"' not in test:
                findings.append(
                    f"families: {FAMILY_TEST}: family '{family}' missing "
                    "from the parameterized family-registry test list")

    for family in families:
        tu = FAMILY_ESTIMATOR_TU.get(family)
        if tu is None:
            findings.append(
                f"families: {FAMILY_CC}: family '{family}' has no estimator "
                "TU mapping in tools/lint_invariants.py — add it and route "
                "the estimator through ActiveKernel()")
        elif "ActiveKernel()" not in read(root, tu):
            findings.append(
                f"families: {tu}: family '{family}' estimator does not use "
                "ActiveKernel() — it bypasses the EstimateKernel dispatch "
                "table and the scalar/SIMD equivalence net")
    return findings


METRIC_CALL = re.compile(
    r"Get(?:Counter|Gauge|Histogram)\(\s*\"((?:[^\"\\]|\\.)*)\"")
METRIC_NAME = re.compile(r"^ipsketch_[a-z0-9]+(?:_[a-z0-9]+)*$")


def check_metrics(root: Path):
    findings = []
    inventory = read(root, README)
    for path in sorted((root / "src").rglob("*.cc")):
        rel = path.relative_to(root).as_posix()
        for match in METRIC_CALL.finditer(path.read_text(encoding="utf-8")):
            literal = match.group(1)
            # Label blocks are appended at runtime ("...occupancy{shard=...");
            # the convention applies to the base name.
            base = literal.split("{")[0]
            if not METRIC_NAME.match(base):
                findings.append(
                    f"metrics: {rel}: metric '{base}' violates the "
                    "ipsketch_<snake_case> naming convention")
                continue
            unprefixed = base[len("ipsketch_"):]
            if f"`{unprefixed}" not in inventory:
                findings.append(
                    f"metrics: {rel}: metric '{base}' is not documented in "
                    f"{README}'s metric inventory table")
    return findings


RAW_MUTEX = re.compile(
    r"std::(?:mutex|condition_variable|lock_guard|unique_lock|scoped_lock)\b"
    r"|#include\s*<(?:mutex|condition_variable)>")


def check_raw_mutex(root: Path):
    findings = []
    for top in ("src", "tests", "bench"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp"):
                continue
            rel = path.relative_to(root).as_posix()
            if rel in MUTEX_ALLOWED:
                continue
            for i, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), 1):
                if RAW_MUTEX.search(line):
                    findings.append(
                        f"raw-mutex: {rel}:{i}: raw standard-library lock "
                        "primitive — use ipsketch::Mutex/MutexLock/CondVar "
                        "(common/mutex.h) so the thread-safety annotations "
                        "and the lock-rank checker see it")
    return findings


def check_fuzz_coverage(root: Path):
    findings = []
    header = read(root, SERIALIZE_H)
    enum_match = re.search(
        r"enum\s+class\s+SketchTypeTag[^{]*\{(.*?)\}", header, re.DOTALL)
    if enum_match is None:
        return [f"fuzz-coverage: {SERIALIZE_H}: SketchTypeTag enum not found"]

    surfaces = []  # (what the target guards, target name)
    for name, _value in re.findall(r"(k\w+)\s*=\s*(\d+)", enum_match.group(1)):
        target = TAG_FUZZ_TARGET.get(name)
        if target is None:
            findings.append(
                f"fuzz-coverage: {SERIALIZE_H}: tag {name} has no fuzz-target "
                "mapping in tools/lint_invariants.py — add one, a fuzz/ "
                "harness, and seeds in tools/make_corpus.py")
            continue
        surfaces.append((f"tag {name}", target))
    surfaces += [(what, target) for target, what in EXTRA_FUZZ_TARGETS.items()]

    for what, target in surfaces:
        harness = root / "fuzz" / f"{target}.cc"
        if not harness.is_file():
            findings.append(
                f"fuzz-coverage: fuzz/{target}.cc: missing fuzz harness for "
                f"{what}")
        corpus = root / "fuzz" / "corpus" / target
        if not any(p.is_file() for p in corpus.glob("*")):
            findings.append(
                f"fuzz-coverage: fuzz/corpus/{target}: no checked-in seed "
                f"for {what} — run tools/make_corpus.py and commit the "
                "seeds")
    return findings


def check_docs_freshness(root: Path):
    findings = []
    for rel in (OPERATIONS_MD, WIRE_FORMAT_MD):
        if not (root / rel).is_file():
            findings.append(
                f"docs-freshness: {rel}: missing — the docs/ tree ships "
                "with the code")
    if findings:
        return findings

    # Every registered metric has a row in the operator runbook. Names are
    # documented fully prefixed (unlike README's inventory, which strips
    # the ipsketch_ prefix).
    ops = read(root, OPERATIONS_MD)
    reported = set()
    for path in sorted((root / "src").rglob("*.cc")):
        rel = path.relative_to(root).as_posix()
        for match in METRIC_CALL.finditer(path.read_text(encoding="utf-8")):
            base = match.group(1).split("{")[0]
            # Malformed names are the metrics rule's finding, not ours.
            if not METRIC_NAME.match(base) or base in reported:
                continue
            if f"`{base}`" not in ops:
                reported.add(base)
                findings.append(
                    f"docs-freshness: {rel}: metric '{base}' is not "
                    f"documented in {OPERATIONS_MD} — operators cannot "
                    "alert on a metric they cannot look up")

    # Every wire tag enumerator is specified in the wire-format doc.
    header = read(root, SERIALIZE_H)
    enum_match = re.search(
        r"enum\s+class\s+SketchTypeTag[^{]*\{(.*?)\}", header, re.DOTALL)
    if enum_match is None:
        findings.append(
            f"docs-freshness: {SERIALIZE_H}: SketchTypeTag enum not found")
        return findings
    wire = read(root, WIRE_FORMAT_MD)
    for name, _value in re.findall(r"(k\w+)\s*=\s*(\d+)",
                                   enum_match.group(1)):
        if f"`{name}`" not in wire:
            findings.append(
                f"docs-freshness: {SERIALIZE_H}: wire tag {name} is not "
                f"documented in {WIRE_FORMAT_MD} — the spec no longer "
                "describes the format it claims to be normative for")
    return findings


RULES = {
    "wire-tags": check_wire_tags,
    "families": check_families,
    "metrics": check_metrics,
    "raw-mutex": check_raw_mutex,
    "fuzz-coverage": check_fuzz_coverage,
    "docs-freshness": check_docs_freshness,
}


def run_all(root: Path):
    findings = []
    for check in RULES.values():
        findings.extend(check(root))
    return findings


# --- self-test ---------------------------------------------------------------

def seed_wire_tags(root: Path):
    path = root / SERIALIZE_H
    # Duplicate wire value: give the last enumerator the first one's value.
    text = path.read_text(encoding="utf-8")
    path.write_text(
        re.sub(r"(kBbitWmh\s*=\s*)\d+", r"\g<1>1", text), encoding="utf-8")


def seed_families(root: Path):
    path = root / FAMILY_CC
    text = path.read_text(encoding="utf-8")
    seeded = text.replace(
        'return *families;',
        'const_cast<std::vector<FamilyInfo>*>(families)->push_back(\n'
        '      {"phantom", "PH", StorageClass::kLinear, true, true, false});\n'
        '  return *families;', 1)
    assert seeded != text, "family seed did not apply"
    path.write_text(seeded, encoding="utf-8")


def seed_metrics(root: Path):
    path = root / "src/service/metrics.cc"
    text = path.read_text(encoding="utf-8")
    seeded = text.replace(
        "namespace metrics {",
        "namespace metrics {\n"
        "inline void UndocumentedMetricForLintSelfTest() {\n"
        '  MetricsRegistry::Global().GetCounter("BadName_total", "seeded");\n'
        "}", 1)
    assert seeded != text, "metrics seed did not apply"
    path.write_text(seeded, encoding="utf-8")


def seed_raw_mutex(root: Path):
    path = root / "src/service/query_engine.cc"
    with path.open("a", encoding="utf-8") as f:
        f.write("\n// seeded by lint self-test\nstatic std::mutex lint_mu;\n")


def seed_fuzz_coverage(root: Path):
    # Empty one per-tag corpus: the tag still has a harness, but no seed.
    corpus = root / "fuzz" / "corpus" / "fuzz_kmv_decode"
    for path in corpus.glob("*"):
        path.unlink()


def seed_docs_metric(root: Path):
    # A well-formed metric registration nowhere in docs/OPERATIONS.md.
    path = root / "src/service/metrics.cc"
    text = path.read_text(encoding="utf-8")
    seeded = text.replace(
        "namespace metrics {",
        "namespace metrics {\n"
        "inline void UndocumentedDocsMetricForLintSelfTest() {\n"
        '  MetricsRegistry::Global().GetCounter("ipsketch_phantom_total",\n'
        '                                       "seeded");\n'
        "}", 1)
    assert seeded != text, "docs metric seed did not apply"
    path.write_text(seeded, encoding="utf-8")


def seed_docs_wire_tag(root: Path):
    # A new wire tag the wire-format doc has never heard of.
    path = root / SERIALIZE_H
    text = path.read_text(encoding="utf-8")
    seeded = text.replace("  kBbitWmh = 9,",
                          "  kBbitWmh = 9,\n  kPhantom = 10,", 1)
    assert seeded != text, "docs wire-tag seed did not apply"
    path.write_text(seeded, encoding="utf-8")


# rule -> (seed label, seed fn) pairs; each seed is planted in its own tree
# copy and must be caught by its rule independently.
SEEDS = {
    "wire-tags": [("duplicate wire value", seed_wire_tags)],
    "families": [("unmapped family", seed_families)],
    "metrics": [("unprefixed metric", seed_metrics)],
    "raw-mutex": [("raw std::mutex", seed_raw_mutex)],
    "fuzz-coverage": [("emptied seed corpus", seed_fuzz_coverage)],
    "docs-freshness": [
        ("undocumented metric", seed_docs_metric),
        ("undocumented wire tag", seed_docs_wire_tag),
    ],
}


def copy_tree(root: Path, dest: Path):
    for top in ("src", "tests", "bench", "tools", "fuzz", "docs"):
        if (root / top).is_dir():
            shutil.copytree(root / top, dest / top)
    shutil.copy(root / README, dest / README)


def self_test(root: Path) -> int:
    baseline = run_all(root)
    if baseline:
        print("self-test: tree must be clean before seeding; found:")
        print("\n".join(f"  {f}" for f in baseline))
        return 1
    failures = 0
    for rule, seeds in SEEDS.items():
        for label, seed in seeds:
            with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
                seeded_root = Path(tmp)
                copy_tree(root, seeded_root)
                seed(seeded_root)
                caught = [f for f in run_all(seeded_root)
                          if f.startswith(rule)]
                if caught:
                    print(f"self-test: {rule}: caught {label} — OK")
                else:
                    print(f"self-test: {rule}: {label} NOT caught")
                    failures += 1
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: the lint's parent repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="seed one violation per rule in a tree copy "
                             "and verify each is caught")
    args = parser.parse_args()
    root = args.root or Path(__file__).resolve().parent.parent

    if args.self_test:
        return self_test(root)

    findings = run_all(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} invariant violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
