// Fuzz target: b-bit WMH fingerprint sketch wire decode (tag 9), covering
// the bits-width validation and the fingerprints-fit-width invariant.
#include <cstdint>
#include <string_view>

#include "fuzz/decode_contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  (void)ipsketch::PeekSketchType(bytes);
  ipsketch::fuzz::CheckBbitWmh(bytes);
  return 0;
}
