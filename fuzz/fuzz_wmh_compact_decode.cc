// Fuzz target: compact (quantized) WMH sketch wire decode (tag 8),
// covering the engine byte; tag 8 is v2-only, so no v1 path exists.
#include <cstdint>
#include <string_view>

#include "fuzz/decode_contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  (void)ipsketch::PeekSketchType(bytes);
  ipsketch::fuzz::CheckCompactWmh(bytes);
  return 0;
}
