// Replay driver for toolchains without libFuzzer (gcc). Links against the
// same LLVMFuzzerTestOneInput entry point the clang `-fsanitize=fuzzer`
// runtime drives, but only replays inputs — files or whole corpus
// directories passed on argv — with no mutation. This keeps every fuzz
// target buildable and its corpus replayable under any compiler; coverage-
// guided exploration happens in CI's clang fuzz-smoke job.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (arg.native().rfind('-', 0) == 0) continue;  // ignore libFuzzer flags
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "standalone replay driver: pass corpus files or "
                 "directories to execute (no coverage-guided fuzzing "
                 "without clang/libFuzzer)\n");
    return 0;
  }
  int failures = 0;
  for (const auto& path : inputs) {
    if (!RunFile(path)) ++failures;
  }
  std::fprintf(stderr, "replayed %zu inputs (%d unreadable)\n", inputs.size(),
               failures);
  return failures == 0 ? 0 : 1;
}
