// Fuzz target: unweighted MinHash sketch wire decode (tag 2).
#include <cstdint>
#include <string_view>

#include "fuzz/decode_contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  (void)ipsketch::PeekSketchType(bytes);
  ipsketch::fuzz::CheckMh(bytes);
  return 0;
}
