// Fuzz target: SimHash sketch wire decode (tag 7), covering the
// num_bits → word-count arithmetic.
#include <cstdint>
#include <string_view>

#include "fuzz/decode_contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  (void)ipsketch::PeekSketchType(bytes);
  ipsketch::fuzz::CheckSimHash(bytes);
  return 0;
}
