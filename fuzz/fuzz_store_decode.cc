// Fuzz target: store-file load — header magic/version, family name and
// resolved-options block, shard and entry parsing, checksum trailer, and the
// v1 (WMH-only fixed header) compatibility shim. The harness also re-seals
// the input with a correct checksum trailer so coverage reaches past the
// trailer check (see CheckStore).
#include <cstdint>
#include <string_view>

#include "fuzz/decode_contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  ipsketch::fuzz::CheckStore(bytes);
  return 0;
}
