// The decode contract every untrusted-input codec in this repo must honor,
// in one checkable form shared by the libFuzzer harnesses (fuzz_*.cc) and
// the deterministic regression replayer (tests/wire_fuzz_regressions.cc):
//
//   1. Decoding arbitrary bytes either fails with a clean Status or
//      succeeds — never a crash, sanitizer finding, or unbounded
//      allocation (wire::BoundedReader caps allocations at the input size,
//      and the harness caps the input size itself — the byte-budget guard).
//   2. If decoding succeeds, re-encoding the decoded value produces bytes
//      the decoder accepts again, and that re-encoding is a fixed point:
//      encode(decode(encode(s))) == encode(s). Legacy (v1) inputs re-encode
//      to current-version bytes, so the fixed point is checked on the
//      re-encoded bytes, not the raw input.
//
// Violations abort after printing the offending codec — libFuzzer turns the
// abort into a crash artifact, ctest into a test failure.

#ifndef IPSKETCH_FUZZ_DECODE_CONTRACT_H_
#define IPSKETCH_FUZZ_DECODE_CONTRACT_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/status.h"
#include "service/persistence.h"
#include "sketch/family.h"
#include "sketch/serialize.h"

namespace ipsketch {
namespace fuzz {

/// Byte-budget guard: decoded allocations are bounded by the input size
/// (wire::BoundedReader), so bounding the input bounds harness memory. 1 MiB
/// is orders of magnitude above any real sketch payload and far below the
/// fuzzer's RSS limit.
inline constexpr size_t kMaxInputBytes = size_t{1} << 20;

[[noreturn]] inline void ContractViolation(const char* codec,
                                           const char* what,
                                           const Status& status) {
  std::fprintf(stderr, "decode-contract violation [%s]: %s: %s\n", codec,
               what, status.ToString().c_str());
  std::abort();
}

/// Checks the contract for one codec: `decode` maps bytes to Result<T>,
/// `encode` maps a decoded T back to bytes.
template <typename Decode, typename Encode>
void CheckCodec(const char* codec, std::string_view data, Decode&& decode,
                Encode&& encode) {
  if (data.size() > kMaxInputBytes) return;
  auto first = decode(data);
  if (!first.ok()) return;  // clean rejection is the common, correct case
  const std::string wire = encode(first.value());
  auto second = decode(std::string_view(wire));
  if (!second.ok()) {
    ContractViolation(codec, "re-encoded bytes rejected", second.status());
  }
  const std::string wire2 = encode(second.value());
  if (wire2 != wire) {
    ContractViolation(codec, "re-encoding is not a fixed point",
                      Status::Internal("encode(decode(encode(s))) differs"));
  }
}

// --- per-wire-tag entry points (one per fuzz target) -------------------------

inline void CheckWmh(std::string_view data) {
  CheckCodec(
      "wmh", data, [](std::string_view b) { return DeserializeWmh(b); },
      [](const WmhSketch& s) { return SerializeWmh(s); });
}

inline void CheckMh(std::string_view data) {
  CheckCodec(
      "mh", data, [](std::string_view b) { return DeserializeMh(b); },
      [](const MhSketch& s) { return SerializeMh(s); });
}

inline void CheckKmv(std::string_view data) {
  CheckCodec(
      "kmv", data, [](std::string_view b) { return DeserializeKmv(b); },
      [](const KmvSketch& s) { return SerializeKmv(s); });
}

inline void CheckJl(std::string_view data) {
  CheckCodec(
      "jl", data, [](std::string_view b) { return DeserializeJl(b); },
      [](const JlSketch& s) { return SerializeJl(s); });
}

inline void CheckCs(std::string_view data) {
  CheckCodec(
      "cs", data,
      [](std::string_view b) { return DeserializeCountSketch(b); },
      [](const CountSketch& s) { return SerializeCountSketch(s); });
}

inline void CheckIcws(std::string_view data) {
  CheckCodec(
      "icws", data, [](std::string_view b) { return DeserializeIcws(b); },
      [](const IcwsSketch& s) { return SerializeIcws(s); });
}

inline void CheckSimHash(std::string_view data) {
  CheckCodec(
      "simhash", data,
      [](std::string_view b) { return DeserializeSimHash(b); },
      [](const SimHashSketch& s) { return SerializeSimHash(s); });
}

inline void CheckCompactWmh(std::string_view data) {
  CheckCodec(
      "wmh_compact", data,
      [](std::string_view b) { return DeserializeCompactWmh(b); },
      [](const CompactWmhSketch& s) { return SerializeCompactWmh(s); });
}

inline void CheckBbitWmh(std::string_view data) {
  CheckCodec(
      "wmh_bbit", data,
      [](std::string_view b) { return DeserializeBbitWmh(b); },
      [](const BbitWmhSketch& s) { return SerializeBbitWmh(s); });
}

// --- store files -------------------------------------------------------------

/// FNV-1a 64, mirroring the persistence trailer (a documented part of the
/// store format), so the harness can re-seal mutated payloads.
inline uint64_t StoreChecksum(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Store-file loader contract. Raw bytes exercise the checksum trailer; a
/// second pass treats the input as the *payload* and appends the correct
/// trailer, so the fuzzer explores header/options/entry parsing instead of
/// stalling on the 2⁻⁶⁴ chance of guessing a valid checksum.
inline void CheckStore(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;
  const auto decode = [](std::string_view b) { return DecodeSketchStore(b); };
  const auto encode = [](const SketchStore& s) {
    return EncodeSketchStore(s);
  };
  CheckCodec("store", data, decode, encode);
  std::string sealed(data);
  wire::AppendU64(&sealed, StoreChecksum(data));
  CheckCodec("store(resealed)", std::string_view(sealed), decode, encode);
}

// --- FamilyOptions -----------------------------------------------------------

/// The two FamilyOptions parsing surfaces: the wire block inside store
/// headers, and the string-keyed params MakeFamily validates and resolves.
inline void CheckFamilyOptions(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;

  // Wire block: decode → re-encode → decode must be a fixed point.
  {
    const auto decode =
        [](std::string_view b) -> Result<FamilyOptions> {
      wire::BoundedReader r(b);
      FamilyOptions options;
      IPS_RETURN_IF_ERROR(ReadFamilyOptions(&r, &options));
      return options;
    };
    const auto encode = [](const FamilyOptions& options) {
      std::string out;
      AppendFamilyOptions(&out, options);
      return out;
    };
    CheckCodec("family-options(wire)", data, decode, encode);
  }

  // String parsing: first line is the family name, each following line one
  // "key=value" param. If MakeFamily accepts, resolution must be complete
  // (FamilyOptionsToString works) and idempotent: re-resolving the resolved
  // options yields the identical identity.
  {
    FamilyOptions options;
    options.dimension = 512;
    options.num_samples = 16;
    options.seed = 7;
    std::string name;
    size_t line_start = 0;
    bool first_line = true;
    while (line_start <= data.size()) {
      size_t eol = data.find('\n', line_start);
      if (eol == std::string_view::npos) eol = data.size();
      std::string_view line = data.substr(line_start, eol - line_start);
      if (first_line) {
        name = std::string(line);
        first_line = false;
      } else if (!line.empty()) {
        const size_t eq = line.find('=');
        const std::string_view key = line.substr(0, eq == line.npos ? line.size() : eq);
        const std::string_view value =
            eq == line.npos ? std::string_view() : line.substr(eq + 1);
        options.params[std::string(key)] = std::string(value);
      }
      line_start = eol + 1;
    }
    auto family = MakeFamily(name, options);
    if (!family.ok()) return;  // clean rejection
    const FamilyOptions& resolved = family.value()->options();
    (void)FamilyOptionsToString(resolved);
    auto again = MakeFamily(name, resolved);
    if (!again.ok()) {
      ContractViolation("family-options(string)",
                        "resolved options rejected on re-resolution",
                        again.status());
    }
    if (!(again.value()->options() == resolved)) {
      ContractViolation("family-options(string)",
                        "option resolution is not idempotent",
                        Status::Internal("resolved identities differ"));
    }
  }
}

/// Every decoder over one input — the regression replayer runs checked-in
/// crash files through all of them, so a corpus file found by any one
/// target keeps guarding the whole surface.
inline void CheckAllDecoders(std::string_view data) {
  (void)PeekSketchType(data);
  CheckWmh(data);
  CheckMh(data);
  CheckKmv(data);
  CheckJl(data);
  CheckCs(data);
  CheckIcws(data);
  CheckSimHash(data);
  CheckCompactWmh(data);
  CheckBbitWmh(data);
  CheckStore(data);
  CheckFamilyOptions(data);
}

}  // namespace fuzz
}  // namespace ipsketch

#endif  // IPSKETCH_FUZZ_DECODE_CONTRACT_H_
