// Fuzz target: Weighted MinHash sketch wire decode (tag 1), covering the
// engine byte and the v1 (engine-less) compatibility path.
#include <cstdint>
#include <string_view>

#include "fuzz/decode_contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  (void)ipsketch::PeekSketchType(bytes);
  ipsketch::fuzz::CheckWmh(bytes);
  return 0;
}
