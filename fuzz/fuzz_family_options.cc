// Fuzz target: FamilyOptions parsing — the wire-format options block used
// inside store headers, and the string-keyed params surface MakeFamily
// validates and resolves (family name on the first line, key=value per
// following line).
#include <cstdint>
#include <string_view>

#include "fuzz/decode_contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  ipsketch::fuzz::CheckFamilyOptions(bytes);
  return 0;
}
