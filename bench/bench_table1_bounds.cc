// Table 1 reproduction: empirical validation of the error-guarantee
// comparison.
//
// Table 1 of the paper contrasts the additive-error guarantees at sketch
// size O(1/ε²):
//     JL / AMS / CountSketch:  ε·‖a‖·‖b‖                        (Fact 1)
//     MinHash (binary only):   ε·√(max(|A|,|B|)·|A∩B|)          (Beyer+)
//     WMH (this paper):        ε·max(‖a_I‖‖b‖, ‖a‖‖b_I‖)        (Theorem 2)
//
// For a sweep of overlap ratios this bench prints each method's measured
// median error alongside its theoretical scale (normalized by the Fact-1
// scale so rows are comparable), verifying (i) the Theorem-2 scale never
// exceeds the Fact-1 scale and shrinks with overlap, and (ii) measured
// errors respect their scales.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "expt/ascii.h"
#include "sketch/count_sketch.h"
#include "sketch/jl_sketch.h"
#include "sketch/kmv.h"
#include "sketch/minhash.h"
#include "sketch/storage.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

double MedianOf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

int Run(size_t scale) {
  const std::vector<double> overlaps = {0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
  const double storage = 384;
  const int kSeeds = static_cast<int>(11 * scale);

  std::vector<std::vector<std::string>> rows;
  for (double overlap : overlaps) {
    SyntheticPairOptions gen;
    gen.dimension = 10000;
    gen.nnz = 1000;
    gen.overlap = overlap;
    gen.seed = static_cast<uint64_t>(overlap * 1e6) + 17;
    const auto pair = GenerateSyntheticPair(gen).value();
    const double truth = Dot(pair.a, pair.b);
    const double fact1 = Fact1Bound(pair.a, pair.b);
    const double thm2 = Theorem2Bound(pair.a, pair.b);

    std::vector<double> jl_err, cs_err, mh_err, kmv_err, wmh_err;
    for (int seed = 0; seed < kSeeds; ++seed) {
      {
        JlOptions o;
        o.num_rows = SamplesForStorageWords(storage, StorageClass::kLinear);
        o.seed = seed;
        jl_err.push_back(std::fabs(
            EstimateJlInnerProduct(SketchJl(pair.a, o).value(),
                                   SketchJl(pair.b, o).value())
                .value() -
            truth));
      }
      {
        CountSketchOptions o;
        o.total_counters =
            SamplesForStorageWords(storage, StorageClass::kLinear);
        o.seed = seed;
        cs_err.push_back(std::fabs(
            EstimateCountSketchInnerProduct(SketchCount(pair.a, o).value(),
                                            SketchCount(pair.b, o).value())
                .value() -
            truth));
      }
      {
        MhOptions o;
        o.num_samples =
            SamplesForStorageWords(storage, StorageClass::kSampling);
        o.seed = seed;
        mh_err.push_back(std::fabs(
            EstimateMhInnerProduct(SketchMh(pair.a, o).value(),
                                   SketchMh(pair.b, o).value())
                .value() -
            truth));
      }
      {
        KmvOptions o;
        o.k = SamplesForStorageWords(storage, StorageClass::kSampling);
        o.seed = seed;
        kmv_err.push_back(std::fabs(
            EstimateKmvInnerProduct(SketchKmv(pair.a, o).value(),
                                    SketchKmv(pair.b, o).value())
                .value() -
            truth));
      }
      {
        WmhOptions o;
        o.num_samples =
            SamplesForStorageWords(storage, StorageClass::kSamplingWithNorm);
        o.seed = seed;
        wmh_err.push_back(std::fabs(
            EstimateWmhInnerProduct(SketchWmh(pair.a, o).value(),
                                    SketchWmh(pair.b, o).value())
                .value() -
            truth));
      }
    }

    rows.push_back({FormatG(overlap, 3),
                    FormatG(thm2 / fact1, 3),
                    FormatG(MedianOf(jl_err) / fact1, 3),
                    FormatG(MedianOf(cs_err) / fact1, 3),
                    FormatG(MedianOf(mh_err) / fact1, 3),
                    FormatG(MedianOf(kmv_err) / fact1, 3),
                    FormatG(MedianOf(wmh_err) / fact1, 3)});
  }

  std::printf("median |est - truth| / (||a||*||b||), storage %.0f words, "
              "%d seeds\n",
              storage, kSeeds);
  std::printf("'T2/F1 scale' = max(||a_I||*||b||, ||a||*||b_I||) / "
              "(||a||*||b||): WMH's guarantee advantage\n\n");
  PrintAlignedTable(std::cout,
                    {"overlap", "T2/F1 scale", "JL", "CS", "MH", "KMV",
                     "WMH"},
                    rows);
  std::printf(
      "\nTable-1 claims to check: (i) 'T2/F1 scale' <= 1 everywhere and\n"
      "shrinks with overlap; (ii) WMH's measured error tracks the T2 scale\n"
      "while JL/CS track the (constant) F1 scale.\n");
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner(
      "Table 1 (error guarantee comparison)",
      "Measured error of each method vs its theoretical scale, by overlap",
      scale);
  return ipsketch::Run(scale);
}
