// Saturation behaviour of the sketch service: an open-loop load generator
// offers a mixed ingest + TopK workload at multiples of the measured
// single-thread TopK rate and reports the client-observed latency
// percentiles at each offered-concurrency level — the measurement half of
// the async-front-door roadmap item. Open loop means arrivals are scheduled
// on a clock, not gated on completions, so queueing delay is charged to the
// operations that suffered it (no coordinated omission: latency runs from
// an op's *scheduled* arrival to its completion).
//
//   build/bench_saturation [scale] [--smoke] [--frontdoor] [--out PATH]
//                          [--metrics-out PATH] [--seed N]
//
//   --smoke        tiny corpus and short windows (CI-sized, a few seconds)
//   --frontdoor    drive the same sweep through the async FrontDoor instead
//                  of direct engine calls: completed-request percentiles
//                  plus shed/expired counts per level, written as a
//                  "saturation_async" section
//   --seed         base seed for the sketch family (default 7)
//   --out          BENCH json path; the sections this run produces
//                  ("saturation" or "saturation_async", plus
//                  "metrics_overhead"/"metrics") replace their previous
//                  versions inside an existing record — other sections and
//                  the other mode's sweep are preserved — anything
//                  unrecognizable is replaced by a standalone record
//   --metrics-out  also write the post-run metrics::RenderText() snapshot
//
// The bench also answers "what does the instrumentation cost?": it measures
// serial TopK scan throughput with metrics recording enabled vs disabled
// (SetEnabledForTesting) and reports the ratio, which the README quotes and
// the ≤3% overhead acceptance gate reads.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/synthetic.h"
#include "service/front_door.h"
#include "service/metrics.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"

using namespace ipsketch;

namespace {

constexpr uint64_t kDimension = 100000;
constexpr size_t kNnz = 300;
constexpr size_t kNumSamples = 256;
constexpr char kFamily[] = "wmh";
constexpr size_t kTopK = 10;
// Every kIngestEvery-th offered op is an ingest (1/8 = 12.5% write mix);
// ingest ids cycle over a small range so the store size — and with it the
// TopK scan cost — stays constant across levels.
constexpr size_t kIngestEvery = 8;
constexpr size_t kIngestIdRange = 64;

// Base seed (--seed) — governs the sketch-family randomness.
uint64_t g_seed = 7;

SparseVector CorpusVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDimension, kNnz, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDimension, std::move(entries));
}

SketchStoreOptions StoreOptions() {
  SketchStoreOptions options;
  options.family = kFamily;
  options.sketch.dimension = kDimension;
  options.sketch.num_samples = kNumSamples;
  options.sketch.seed = g_seed;
  options.num_shards = 32;
  return options;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Exact percentile of `values` (sorted in place), nearest-rank. Microsec.
double PercentileUs(std::vector<uint64_t>* values_ns, double q) {
  if (values_ns->empty()) return 0.0;
  std::sort(values_ns->begin(), values_ns->end());
  const double rank = q / 100.0 * static_cast<double>(values_ns->size());
  size_t i = static_cast<size_t>(std::ceil(rank));
  if (i > 0) --i;
  if (i >= values_ns->size()) i = values_ns->size() - 1;
  return static_cast<double>((*values_ns)[i]) / 1000.0;
}

struct LatencyDigest {
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0, max_us = 0.0;
  size_t ops = 0;
};

LatencyDigest Digest(std::vector<uint64_t>* values_ns) {
  LatencyDigest d;
  d.ops = values_ns->size();
  if (values_ns->empty()) return d;
  d.p50_us = PercentileUs(values_ns, 50);
  d.p95_us = PercentileUs(values_ns, 95);
  d.p99_us = PercentileUs(values_ns, 99);
  d.max_us = static_cast<double>(values_ns->back()) / 1000.0;  // sorted
  return d;
}

/// One offered-concurrency level of the sweep.
struct LevelResult {
  double offered_concurrency = 0.0;
  double offered_per_sec = 0.0;
  double achieved_per_sec = 0.0;
  LatencyDigest topk;
  LatencyDigest ingest;
};

/// Runs one open-loop level: `num_ops` arrivals at `offered_per_sec`,
/// every kIngestEvery-th an ingest, the rest TopK, executed on `pool`.
LevelResult RunLevel(const SketchStore& store, SketchStore* ingest_store,
                     ThreadPool* pool, const std::vector<SparseVector>& queries,
                     double offered_per_sec, double offered_concurrency,
                     size_t num_ops) {
  // The engine runs serially inside each pool task — concurrency comes from
  // the open-loop generator keeping several tasks in flight, which is the
  // front-door shape this bench models.
  QueryEngine engine(&store, /*pool=*/nullptr);

  std::vector<uint64_t> latency_ns(num_ops, 0);
  std::vector<uint8_t> is_ingest(num_ops, 0);
  std::atomic<size_t> remaining{num_ops};

  const auto start = std::chrono::steady_clock::now();
  const uint64_t start_ns = metrics::NowNs();
  for (size_t i = 0; i < num_ops; ++i) {
    const double offset_secs = static_cast<double>(i) / offered_per_sec;
    const uint64_t scheduled_ns =
        start_ns + static_cast<uint64_t>(offset_secs * 1e9);
    std::this_thread::sleep_until(
        start + std::chrono::duration<double>(offset_secs));
    const bool ingest_op = (i % kIngestEvery) == kIngestEvery - 1;
    is_ingest[i] = ingest_op ? 1 : 0;
    const auto op = [&, i, scheduled_ns, ingest_op] {
      const SparseVector& vec = queries[i % queries.size()];
      if (ingest_op) {
        const uint64_t id = (1u << 20) | (i % kIngestIdRange);
        if (!ingest_store->BuildAndInsert(id, vec).ok()) std::exit(1);
      } else {
        if (!engine.TopK(vec, kTopK).ok()) std::exit(1);
      }
      latency_ns[i] = metrics::NowNs() - scheduled_ns;
      remaining.fetch_sub(1, std::memory_order_release);
    };
    // A stopping pool cannot happen here; run inline if it ever does so the
    // remaining count still drains.
    if (!pool->Submit(op)) op();
  }
  while (remaining.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double secs = SecondsSince(start);

  std::vector<uint64_t> topk_ns, ingest_ns;
  topk_ns.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    (is_ingest[i] ? ingest_ns : topk_ns).push_back(latency_ns[i]);
  }
  LevelResult result;
  result.offered_concurrency = offered_concurrency;
  result.offered_per_sec = offered_per_sec;
  result.achieved_per_sec = static_cast<double>(num_ops) / secs;
  result.topk = Digest(&topk_ns);
  result.ingest = Digest(&ingest_ns);
  return result;
}

/// One offered-concurrency level of the async (--frontdoor) sweep. The
/// latency digests cover completed requests only; overload shows up in the
/// shed/expired counts instead of in unbounded percentiles.
struct AsyncLevelResult {
  double offered_concurrency = 0.0;
  double offered_per_sec = 0.0;
  double achieved_per_sec = 0.0;
  LatencyDigest topk;
  LatencyDigest ingest;
  size_t shed = 0;
  size_t expired = 0;
  size_t errors = 0;
};

/// Runs one open-loop level through the front door: TopK arrivals submit
/// via the callback form (latency runs from the op's scheduled arrival to
/// its completion callback), ingest arrivals write the store directly on
/// the pool exactly as in the sync sweep.
AsyncLevelResult RunFrontDoorLevel(FrontDoor* door, SketchStore* ingest_store,
                                   ThreadPool* pool,
                                   const std::vector<SparseVector>& queries,
                                   double offered_per_sec,
                                   double offered_concurrency,
                                   size_t num_ops) {
  std::vector<uint64_t> latency_ns(num_ops, 0);
  // Per-op outcome, written once by whichever thread resolves the op:
  // 1 = completed TopK, 2 = ingest, 3 = shed, 4 = expired, 5 = error.
  std::vector<uint8_t> outcome(num_ops, 0);
  std::atomic<size_t> remaining{num_ops};

  const auto start = std::chrono::steady_clock::now();
  const uint64_t start_ns = metrics::NowNs();
  for (size_t i = 0; i < num_ops; ++i) {
    const double offset_secs = static_cast<double>(i) / offered_per_sec;
    const uint64_t scheduled_ns =
        start_ns + static_cast<uint64_t>(offset_secs * 1e9);
    std::this_thread::sleep_until(
        start + std::chrono::duration<double>(offset_secs));
    const bool ingest_op = (i % kIngestEvery) == kIngestEvery - 1;
    if (ingest_op) {
      const auto op = [&, i, scheduled_ns] {
        const uint64_t id = (1u << 20) | (i % kIngestIdRange);
        if (!ingest_store->BuildAndInsert(id, queries[i % queries.size()])
                 .ok()) {
          std::exit(1);
        }
        latency_ns[i] = metrics::NowNs() - scheduled_ns;
        outcome[i] = 2;
        remaining.fetch_sub(1, std::memory_order_release);
      };
      if (!pool->Submit(op)) op();
    } else {
      door->SubmitTopK(
          queries[i % queries.size()], kTopK,
          [&, i, scheduled_ns](FrontDoor::TopKResult r) {
            if (r.ok()) {
              latency_ns[i] = metrics::NowNs() - scheduled_ns;
              outcome[i] = 1;
            } else if (r.status().code() == StatusCode::kUnavailable) {
              outcome[i] = 3;
            } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
              outcome[i] = 4;
            } else {
              outcome[i] = 5;
            }
            remaining.fetch_sub(1, std::memory_order_release);
          });
    }
  }
  while (remaining.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double secs = SecondsSince(start);

  AsyncLevelResult result;
  std::vector<uint64_t> topk_ns, ingest_ns;
  topk_ns.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    switch (outcome[i]) {
      case 1: topk_ns.push_back(latency_ns[i]); break;
      case 2: ingest_ns.push_back(latency_ns[i]); break;
      case 3: ++result.shed; break;
      case 4: ++result.expired; break;
      default: ++result.errors; break;
    }
  }
  result.offered_concurrency = offered_concurrency;
  result.offered_per_sec = offered_per_sec;
  result.achieved_per_sec = static_cast<double>(num_ops) / secs;
  result.topk = Digest(&topk_ns);
  result.ingest = Digest(&ingest_ns);
  return result;
}

/// Serial TopK scan throughput in estimated pairs/sec (queries/sec times
/// catalog size) over a measurement window — the metrics-overhead probe.
double MeasureTopkPairsPerSec(const SketchStore& store,
                              const std::vector<SparseVector>& queries,
                              double window_secs) {
  QueryEngine engine(&store, /*pool=*/nullptr);
  size_t done = 0;
  const auto start = std::chrono::steady_clock::now();
  double secs = 0.0;
  do {
    if (!engine.TopK(queries[done % queries.size()], kTopK).ok()) {
      std::exit(1);
    }
    ++done;
    secs = SecondsSince(start);
  } while (secs < window_secs);
  return static_cast<double>(done) * static_cast<double>(store.size()) / secs;
}

void AppendLevelJson(std::string* out, const LevelResult& r, bool first) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s\n      {\"offered_concurrency\": %.2f, \"offered_per_sec\": %.1f, "
      "\"achieved_per_sec\": %.1f, \"ops\": %zu,\n"
      "       \"topk_p50_us\": %.1f, \"topk_p95_us\": %.1f, "
      "\"topk_p99_us\": %.1f, \"topk_max_us\": %.1f,\n"
      "       \"ingest_p50_us\": %.1f, \"ingest_p95_us\": %.1f, "
      "\"ingest_p99_us\": %.1f, \"ingest_max_us\": %.1f}",
      first ? "" : ",", r.offered_concurrency, r.offered_per_sec,
      r.achieved_per_sec, r.topk.ops + r.ingest.ops, r.topk.p50_us,
      r.topk.p95_us, r.topk.p99_us, r.topk.max_us, r.ingest.p50_us,
      r.ingest.p95_us, r.ingest.p99_us, r.ingest.max_us);
  *out += buf;
}

/// The "saturation" (+ overhead + snapshot) JSON fragment, no enclosing
/// braces: `"saturation": {...}, "metrics_overhead": {...}, "metrics": ...`.
std::string SectionsJson(const std::vector<LevelResult>& levels,
                         size_t corpus, double base_rate, double pairs_on,
                         double pairs_off) {
  std::string out = "  \"saturation\": {\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    \"corpus\": %zu,\n"
                "    \"mix_ingest_fraction\": %.4f,\n"
                "    \"base_topk_per_sec\": %.1f,\n"
                "    \"levels\": [",
                corpus, 1.0 / kIngestEvery, base_rate);
  out += buf;
  for (size_t i = 0; i < levels.size(); ++i) {
    AppendLevelJson(&out, levels[i], i == 0);
  }
  out += "\n    ]\n  },\n";
  std::snprintf(buf, sizeof(buf),
                "  \"metrics_overhead\": {\"topk_pairs_per_sec_on\": %.1f, "
                "\"topk_pairs_per_sec_off\": %.1f, \"ratio\": %.4f, "
                "\"compiled_in\": %s},\n",
                pairs_on, pairs_off, pairs_off > 0 ? pairs_on / pairs_off : 1.0,
                metrics::kCompiledIn ? "true" : "false");
  out += buf;
  out += "  \"metrics\": ";
  out += metrics::MetricsRegistry::Global().RenderJson();
  return out;
}

void AppendAsyncLevelJson(std::string* out, const AsyncLevelResult& r,
                          bool first) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "%s\n      {\"offered_concurrency\": %.2f, \"offered_per_sec\": %.1f, "
      "\"achieved_per_sec\": %.1f, \"ops\": %zu,\n"
      "       \"shed\": %zu, \"expired\": %zu, \"errors\": %zu,\n"
      "       \"topk_p50_us\": %.1f, \"topk_p95_us\": %.1f, "
      "\"topk_p99_us\": %.1f, \"topk_max_us\": %.1f,\n"
      "       \"ingest_p50_us\": %.1f, \"ingest_p95_us\": %.1f, "
      "\"ingest_p99_us\": %.1f, \"ingest_max_us\": %.1f}",
      first ? "" : ",", r.offered_concurrency, r.offered_per_sec,
      r.achieved_per_sec,
      r.topk.ops + r.ingest.ops + r.shed + r.expired + r.errors, r.shed,
      r.expired, r.errors, r.topk.p50_us, r.topk.p95_us, r.topk.p99_us,
      r.topk.max_us, r.ingest.p50_us, r.ingest.p95_us, r.ingest.p99_us,
      r.ingest.max_us);
  *out += buf;
}

/// The `"saturation_async": {...}, "metrics": ...` fragment of the
/// --frontdoor run, no enclosing braces.
std::string AsyncSectionsJson(const std::vector<AsyncLevelResult>& levels,
                              size_t corpus, double base_rate,
                              const FrontDoorOptions& options) {
  std::string out = "  \"saturation_async\": {\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    \"corpus\": %zu,\n"
                "    \"mix_ingest_fraction\": %.4f,\n"
                "    \"base_topk_per_sec\": %.1f,\n"
                "    \"max_queue_depth\": %zu,\n"
                "    \"max_batch\": %zu,\n"
                "    \"levels\": [",
                corpus, 1.0 / kIngestEvery, base_rate,
                options.max_queue_depth, options.max_batch);
  out += buf;
  for (size_t i = 0; i < levels.size(); ++i) {
    AppendAsyncLevelJson(&out, levels[i], i == 0);
  }
  out += "\n    ]\n  },\n";
  out += "  \"metrics\": ";
  out += metrics::MetricsRegistry::Global().RenderJson();
  return out;
}

/// Index one past the JSON value starting at `i` (first non-space char):
/// balanced braces/brackets with string-aware scanning, or a scalar run.
size_t SkipJsonValue(const std::string& s, size_t i) {
  const auto skip_string = [&s](size_t j) {
    ++j;  // opening quote
    while (j < s.size() && s[j] != '"') j += (s[j] == '\\') ? 2 : 1;
    return j < s.size() ? j + 1 : j;
  };
  if (i >= s.size()) return i;
  if (s[i] == '"') return skip_string(i);
  if (s[i] == '{' || s[i] == '[') {
    int depth = 0;
    for (size_t j = i; j < s.size();) {
      const char c = s[j];
      if (c == '"') {
        j = skip_string(j);
      } else {
        if (c == '{' || c == '[') ++depth;
        if ((c == '}' || c == ']') && --depth == 0) return j + 1;
        ++j;
      }
    }
    return s.size();
  }
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         s[i] != '\n') {
    ++i;
  }
  return i;
}

/// Erases every `"key": <value>` member (plus one adjacent comma) from the
/// JSON object text `s`. The quoted-key marker is exact, so removing
/// "saturation" leaves "saturation_async" untouched and vice versa.
void RemoveSection(std::string* s, const std::string& key) {
  const std::string marker = "\"" + key + "\":";
  size_t pos;
  while ((pos = s->find(marker)) != std::string::npos) {
    size_t vstart = pos + marker.size();
    while (vstart < s->size() &&
           ((*s)[vstart] == ' ' || (*s)[vstart] == '\n')) {
      ++vstart;
    }
    size_t vend = SkipJsonValue(*s, vstart);
    size_t begin = pos;
    while (begin > 0 &&
           ((*s)[begin - 1] == ' ' || (*s)[begin - 1] == '\n')) {
      --begin;
    }
    if (begin > 0 && (*s)[begin - 1] == ',') {
      --begin;  // swallow the comma separating us from the prior member
    } else {
      size_t after = vend;
      while (after < s->size() &&
             ((*s)[after] == ' ' || (*s)[after] == '\n')) {
        ++after;
      }
      if (after < s->size() && (*s)[after] == ',') vend = after + 1;
    }
    s->erase(begin, vend - begin);
  }
}

/// Writes `sections` into the record at `path`: an existing JSON object
/// there keeps every section except the ones named in `replaced_keys`
/// (this run's own sections, removed by brace matching before the fresh
/// versions are appended), so the sync and --frontdoor sweeps can extend
/// one record in either order, idempotently. Anything unrecognizable is
/// replaced by a standalone record.
bool WriteRecord(const std::string& path, const std::string& sections,
                 const std::vector<const char*>& replaced_keys) {
  std::string existing;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buffer[1 << 16];
    size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      existing.append(buffer, got);
    }
    std::fclose(f);
  }

  std::string out;
  const size_t close = existing.rfind('}');
  if (!existing.empty() && existing[0] == '{' &&
      close != std::string::npos) {
    out = existing.substr(0, close);
    for (const char* key : replaced_keys) RemoveSection(&out, key);
    while (!out.empty() &&
           (out.back() == '\n' || out.back() == ' ' || out.back() == ',')) {
      out.pop_back();
    }
  }
  if (out.empty() || out[0] != '{') {
    // No record to extend (absent or unrecognizable): standalone.
    out = "{\n  \"bench\": \"saturation\"";
  }
  if (out.back() == '{') {
    out += "\n" + sections + "\n}\n";
  } else {
    out += ",\n" + sections + "\n}\n";
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(out.data(), 1, out.size(), f);
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t scale = bench::ScaleFromArgs(argc, argv);
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  const bool frontdoor = bench::HasFlag(argc, argv, "--frontdoor");
  g_seed = bench::SeedFromArgs(argc, argv, g_seed);
  bench::Banner("saturation",
                frontdoor
                    ? "Open-loop ingest+TopK load sweep through the async "
                      "FrontDoor: completed-request latency percentiles plus "
                      "shed/expired counts vs offered concurrency"
                    : "Open-loop ingest+TopK load sweep: client-observed "
                      "latency percentiles vs offered concurrency, plus "
                      "metrics overhead",
                scale);
  std::printf("hardware_concurrency: %u%s%s\n\n",
              std::thread::hardware_concurrency(), smoke ? "  [smoke]" : "",
              frontdoor ? "  [frontdoor]" : "");

  const size_t corpus = smoke ? 120 : 600 * scale;
  const double level_window_secs = smoke ? 0.25 : 1.5;
  const size_t max_ops_per_level = smoke ? 300 : 6000;
  const double overhead_window_secs = smoke ? 0.1 : 0.3;

  auto store = SketchStore::Make(StoreOptions()).value();
  {
    std::vector<std::pair<uint64_t, SparseVector>> batch;
    batch.reserve(corpus);
    for (uint64_t id = 0; id < corpus; ++id) {
      batch.push_back({id, CorpusVector(id)});
    }
    ThreadPool pool(4);
    if (!store.BuildAndInsertBatch(batch, &pool).ok()) {
      std::printf("ingest failed\n");
      return 1;
    }
  }
  std::vector<SparseVector> queries;
  for (size_t q = 0; q < 32; ++q) queries.push_back(CorpusVector(1000000 + q));
  std::printf("corpus: %zu vectors, dim %llu, %zu nnz, family %s, m = %zu\n",
              corpus, static_cast<unsigned long long>(kDimension), kNnz,
              kFamily, kNumSamples);

  // --- metrics overhead A/B (serial engine, nothing else in flight) --------
  // Alternating best-of rounds: on a shared box a single long window per
  // mode folds scheduler noise into the ratio; interference only ever slows
  // a round down, so the per-mode maximum is the clean comparison. The
  // --frontdoor run skips the probe (the ratio is mode-independent) and
  // leaves the committed "metrics_overhead" section alone.
  MeasureTopkPairsPerSec(store, queries, overhead_window_secs);  // warm up
  double pairs_on = 0.0, pairs_off = 0.0;
  if (!frontdoor) {
    const int ab_rounds = smoke ? 3 : 5;
    for (int round = 0; round < ab_rounds; ++round) {
      metrics::SetEnabledForTesting(true);
      pairs_on = std::max(
          pairs_on,
          MeasureTopkPairsPerSec(store, queries, overhead_window_secs));
      metrics::SetEnabledForTesting(false);
      pairs_off = std::max(
          pairs_off,
          MeasureTopkPairsPerSec(store, queries, overhead_window_secs));
    }
    metrics::SetEnabledForTesting(true);
    const double ratio = pairs_off > 0 ? pairs_on / pairs_off : 1.0;
    std::printf("\nmetrics overhead on TopK scan: on %.0f pairs/s, off %.0f "
                "pairs/s, ratio %.4f%s\n",
                pairs_on, pairs_off, ratio,
                metrics::kCompiledIn ? "" : " (metrics compiled out)");
  }

  // --- saturation sweep -----------------------------------------------------
  // Base rate: sustained serial TopK throughput. Offered load at level c is
  // c times that — level 1 should keep one worker busy, higher levels queue.
  const double base_rate =
      MeasureTopkPairsPerSec(store, queries, overhead_window_secs) /
      static_cast<double>(store.size());
  std::printf("base serial TopK rate: %.1f queries/sec\n\n", base_rate);

  const size_t pool_threads =
      std::min<size_t>(8, std::max(2u, std::thread::hardware_concurrency()));
  auto ingest_store = SketchStore::Make(StoreOptions()).value();
  std::string sections;
  std::vector<const char*> replaced_keys;
  if (frontdoor) {
    const FrontDoorOptions fd_options;  // stock knobs: depth 256, batch 32
    std::printf("front door: max_queue_depth %zu, max_batch %zu\n\n",
                fd_options.max_queue_depth, fd_options.max_batch);
    std::vector<AsyncLevelResult> levels;
    std::printf("%-12s %12s %12s %10s %10s %10s %8s %8s\n", "offered_conc",
                "offered/s", "achieved/s", "topk_p50", "topk_p95",
                "topk_p99", "shed", "expired");
    for (double level : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const double offered = level * base_rate;
      const size_t num_ops = std::min(
          max_ops_per_level,
          std::max<size_t>(50, static_cast<size_t>(offered *
                                                   level_window_secs)));
      // A fresh pool and front door per level (declared in this order so
      // the door — whose destructor drains in-flight batches — dies first)
      // keep shed/expired counts attributable to one level.
      ThreadPool pool(pool_threads);
      FrontDoor door(&store, &pool, fd_options);
      AsyncLevelResult r = RunFrontDoorLevel(&door, &ingest_store, &pool,
                                             queries, offered, level,
                                             num_ops);
      std::printf("%-12.1f %12.1f %12.1f %8.0fus %8.0fus %8.0fus %8zu "
                  "%8zu\n",
                  level, r.offered_per_sec, r.achieved_per_sec,
                  r.topk.p50_us, r.topk.p95_us, r.topk.p99_us, r.shed,
                  r.expired);
      levels.push_back(r);
    }
    sections = AsyncSectionsJson(levels, corpus, base_rate, fd_options);
    replaced_keys = {"saturation_async", "metrics"};
  } else {
    std::vector<LevelResult> levels;
    std::printf("%-12s %12s %12s %10s %10s %10s %12s\n", "offered_conc",
                "offered/s", "achieved/s", "topk_p50", "topk_p95",
                "topk_p99", "ingest_p99");
    // 0.5 gives an under-saturated anchor point even on a single-core box
    // (where generator + worker share the core and capacity sits below
    // 1.0).
    for (double level : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const double offered = level * base_rate;
      const size_t num_ops = std::min(
          max_ops_per_level,
          std::max<size_t>(50, static_cast<size_t>(offered *
                                                   level_window_secs)));
      ThreadPool pool(pool_threads);
      LevelResult r = RunLevel(store, &ingest_store, &pool, queries, offered,
                               level, num_ops);
      std::printf("%-12.1f %12.1f %12.1f %8.0fus %8.0fus %8.0fus %10.0fus\n",
                  level, r.offered_per_sec, r.achieved_per_sec,
                  r.topk.p50_us, r.topk.p95_us, r.topk.p99_us,
                  r.ingest.p99_us);
      levels.push_back(r);
    }
    sections = SectionsJson(levels, corpus, base_rate, pairs_on, pairs_off);
    replaced_keys = {"saturation", "metrics_overhead", "metrics"};
  }

  // --- outputs --------------------------------------------------------------
  const std::string json_path =
      bench::FlagValue(argc, argv, "--out", "BENCH_service.json");
  if (!WriteRecord(json_path, sections, replaced_keys)) {
    std::printf("\ncould not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%s)\n", json_path.c_str(),
              frontdoor ? "saturation_async + metrics"
                        : "saturation + metrics_overhead + metrics");

  const std::string metrics_path =
      bench::FlagValue(argc, argv, "--metrics-out");
  if (!metrics_path.empty()) {
    const std::string text = metrics::MetricsRegistry::Global().RenderText();
    if (std::FILE* f = std::fopen(metrics_path.c_str(), "wb")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", metrics_path.c_str());
    } else {
      std::printf("could not write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}
