// Service-layer throughput: vectors/sec for batch ingest into a SketchStore
// and queries/sec for QueryEngine::TopK, each at 1/2/4/8 worker threads.
//
//   build/bench_service_throughput [scale]
//
// Ingest parallelizes over vectors (one WmhSketcher per worker); queries
// parallelize over shards. Speedups track the machine's core count —
// hardware_concurrency is printed so single-core results read correctly.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"

using namespace ipsketch;

namespace {

constexpr uint64_t kDimension = 100000;
constexpr size_t kNnz = 300;
constexpr size_t kNumSamples = 256;

SparseVector CorpusVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDimension, kNnz, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDimension, std::move(entries));
}

SketchStoreOptions StoreOptions() {
  SketchStoreOptions options;
  options.dimension = kDimension;
  options.num_shards = 32;
  options.sketch.num_samples = kNumSamples;
  options.sketch.seed = 7;
  return options;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t scale = bench::ScaleFromArgs(argc, argv);
  bench::Banner("service_throughput",
                "SketchStore batch ingest and QueryEngine::TopK throughput "
                "at 1/2/4/8 threads",
                scale);
  std::printf("hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  const size_t corpus = 600 * scale;
  std::vector<std::pair<uint64_t, SparseVector>> batch;
  batch.reserve(corpus);
  for (uint64_t id = 0; id < corpus; ++id) {
    batch.push_back({id, CorpusVector(id)});
  }
  std::printf("corpus: %zu vectors, dim %llu, %zu nnz, m = %zu\n\n", corpus,
              static_cast<unsigned long long>(kDimension), kNnz, kNumSamples);

  // --- ingest ---------------------------------------------------------------
  std::printf("%-10s %14s %10s\n", "ingest", "vectors/sec", "speedup");
  double base_rate = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    auto store = SketchStore::Make(StoreOptions()).value();
    const auto start = std::chrono::steady_clock::now();
    const Status st = store.BuildAndInsertBatch(batch, &pool);
    const double secs = SecondsSince(start);
    if (!st.ok() || store.size() != corpus) {
      std::printf("ingest failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double rate = static_cast<double>(corpus) / secs;
    if (threads == 1) base_rate = rate;
    std::printf("%zu threads  %14.0f %9.2fx\n", threads, rate,
                rate / base_rate);
  }

  // --- queries --------------------------------------------------------------
  auto store = SketchStore::Make(StoreOptions()).value();
  {
    ThreadPool pool(4);
    if (!store.BuildAndInsertBatch(batch, &pool).ok()) return 1;
  }
  const size_t num_queries = 40 * scale;
  std::vector<SparseVector> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(CorpusVector(1000000 + q));
  }

  std::printf("\n%-10s %14s %10s\n", "top-10", "queries/sec", "speedup");
  base_rate = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    QueryEngine engine(&store, &pool);
    const auto start = std::chrono::steady_clock::now();
    for (const SparseVector& q : queries) {
      if (!engine.TopK(q, 10).ok()) return 1;
    }
    const double secs = SecondsSince(start);
    const double rate = static_cast<double>(num_queries) / secs;
    if (threads == 1) base_rate = rate;
    std::printf("%zu threads  %14.1f %9.2fx\n", threads, rate,
                rate / base_rate);
  }
  return 0;
}
