// Service-layer throughput: vectors/sec for batch ingest into a SketchStore,
// queries/sec for QueryEngine::TopK at 1/2/4/8 worker threads, and pairwise
// estimate throughput per family under the dispatched SIMD kernel vs the
// scalar tier.
//
//   build/bench_service_throughput [scale] [--out PATH] [--seed N]
//
// Ingest parallelizes over vectors (one family Sketcher per worker);
// queries parallelize over shards. Speedups track the machine's core count
// — hardware_concurrency is printed so single-core results read correctly.
//
// Besides the human-readable table, the bench writes BENCH_service.json to
// the working directory (machine-readable rates, the dispatched kernel
// name, and hardware_concurrency) so CI can track the perf trajectory
// across commits; tools/check_bench_regression.py diffs the estimate
// throughput against the committed baseline in bench/baselines/.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/simd/dispatch.h"
#include "data/synthetic.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"
#include "sketch/family.h"

using namespace ipsketch;

namespace {

constexpr uint64_t kDimension = 100000;
constexpr size_t kNnz = 300;
constexpr size_t kNumSamples = 256;
constexpr char kFamily[] = "wmh";

// Base seed (--seed) — governs the sketch-family randomness.
uint64_t g_seed = 7;

SparseVector CorpusVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDimension, kNnz, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDimension, std::move(entries));
}

SketchStoreOptions StoreOptions(const char* engine = nullptr) {
  SketchStoreOptions options;
  options.family = kFamily;
  options.sketch.dimension = kDimension;
  options.sketch.num_samples = kNumSamples;
  options.sketch.seed = g_seed;
  if (engine != nullptr) options.sketch.params["engine"] = engine;
  options.num_shards = 32;
  return options;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One measured (threads, rate) point.
struct RatePoint {
  size_t threads = 0;
  double per_sec = 0.0;
};

void AppendRatesJson(std::string* out, const char* key,
                     const std::vector<RatePoint>& rates) {
  *out += std::string("  \"") + key + "\": [";
  for (size_t i = 0; i < rates.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\": %zu, \"per_sec\": %.1f}",
                  i == 0 ? "" : ", ", rates[i].threads, rates[i].per_sec);
    *out += buf;
  }
  *out += "]";
}

/// One measured estimate-throughput point: pairwise estimates/sec for a
/// family at m samples, under the dispatched kernel and the scalar tier.
struct EstimatePoint {
  std::string family;
  size_t m = 0;
  double per_sec = 0.0;         // dispatched kernel
  double per_sec_scalar = 0.0;  // forced scalar tier
};

/// Sustained single-thread pairwise estimate rate of `family` over a
/// resident catalog, under `forced` (nullptr = dispatched kernel).
double MeasureEstimateRate(const SketchFamily& family,
                           const std::vector<std::unique_ptr<AnySketch>>&
                               catalog,
                           const AnySketch& query,
                           const simd::EstimateKernel* forced) {
  simd::SetActiveKernelForTesting(forced);
  double sink = 0.0;
  size_t pairs = 0;
  const auto start = std::chrono::steady_clock::now();
  double secs = 0.0;
  do {
    for (const auto& sketch : catalog) {
      auto est = family.Estimate(query, *sketch);
      if (!est.ok()) {
        simd::SetActiveKernelForTesting(nullptr);
        std::printf("estimate failed: %s\n", est.status().ToString().c_str());
        std::exit(1);
      }
      sink += est.value();
    }
    pairs += catalog.size();
    secs = SecondsSince(start);
  } while (secs < 0.25);
  simd::SetActiveKernelForTesting(nullptr);
  // Keep the accumulated estimates observable so the loop cannot be
  // optimized away.
  if (sink == 0.12345) std::printf("(unlikely sink value)\n");
  return static_cast<double>(pairs) / secs;
}

std::vector<EstimatePoint> MeasureEstimateThroughput() {
  struct Config {
    const char* family;
    size_t m;
  };
  // The acceptance configuration is WMH at m = 128; the rest show every
  // vectorized estimator family plus the m-scaling of the headline one.
  const std::vector<Config> configs = {
      {"wmh", 128},        {"wmh", 1024},      {"icws", 128},
      {"wmh_compact", 128}, {"wmh_bbit", 128}, {"mh", 128},
  };
  const size_t kCatalog = 256;
  std::vector<EstimatePoint> out;
  std::printf("\n%-18s %6s %16s %16s %9s   (kernel: %s)\n", "estimate",
              "m", "pairs/sec", "scalar pairs/sec", "speedup",
              simd::ActiveKernelName());
  for (const Config& config : configs) {
    FamilyOptions options;
    options.dimension = kDimension;
    options.num_samples = config.m;
    options.seed = g_seed;
    auto family = MakeFamily(config.family, options).value();
    auto sketcher = family->MakeSketcher().value();
    std::vector<std::unique_ptr<AnySketch>> catalog;
    catalog.reserve(kCatalog);
    for (size_t i = 0; i < kCatalog; ++i) {
      auto sketch = family->NewSketch();
      if (!sketcher->Sketch(CorpusVector(i), sketch.get()).ok()) {
        std::printf("sketch failed\n");
        std::exit(1);
      }
      catalog.push_back(std::move(sketch));
    }
    auto query = family->NewSketch();
    if (!sketcher->Sketch(CorpusVector(1 << 30), query.get()).ok()) {
      std::printf("sketch failed\n");
      std::exit(1);
    }
    EstimatePoint point;
    point.family = config.family;
    point.m = config.m;
    point.per_sec =
        MeasureEstimateRate(*family, catalog, *query, /*forced=*/nullptr);
    point.per_sec_scalar = MeasureEstimateRate(*family, catalog, *query,
                                               &simd::ScalarKernel());
    std::printf("%-18s %6zu %16.0f %16.0f %8.2fx\n", config.family, config.m,
                point.per_sec, point.per_sec_scalar,
                point.per_sec / point.per_sec_scalar);
    out.push_back(std::move(point));
  }
  return out;
}

void AppendEstimateJson(std::string* out,
                        const std::vector<EstimatePoint>& points) {
  *out += "  \"estimate_pairs_per_sec\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"family\": \"%s\", \"m\": %zu, "
                  "\"per_sec\": %.1f, \"per_sec_scalar\": %.1f, "
                  "\"speedup\": %.3f}",
                  i == 0 ? "" : ",", points[i].family.c_str(), points[i].m,
                  points[i].per_sec, points[i].per_sec_scalar,
                  points[i].per_sec / points[i].per_sec_scalar);
    *out += buf;
  }
  *out += "\n  ]";
}

}  // namespace

int main(int argc, char** argv) {
  const size_t scale = bench::ScaleFromArgs(argc, argv);
  g_seed = bench::SeedFromArgs(argc, argv, g_seed);
  bench::Banner("service_throughput",
                "SketchStore batch ingest and QueryEngine::TopK throughput "
                "at 1/2/4/8 threads",
                scale);
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());
  std::printf("estimate kernel: %s\n\n", simd::ActiveKernelName());

  const size_t corpus = 600 * scale;
  std::vector<std::pair<uint64_t, SparseVector>> batch;
  batch.reserve(corpus);
  for (uint64_t id = 0; id < corpus; ++id) {
    batch.push_back({id, CorpusVector(id)});
  }
  std::printf("corpus: %zu vectors, dim %llu, %zu nnz, family %s, m = %zu\n\n",
              corpus, static_cast<unsigned long long>(kDimension), kNnz,
              kFamily, kNumSamples);

  // --- ingest, per WMH engine ----------------------------------------------
  // "dart" is the default ingest engine; "active_index" is kept as the
  // head-to-head baseline so the speedup is visible in every bench record.
  const std::vector<const char*> kEngines = {"dart", "active_index"};
  std::vector<std::vector<RatePoint>> ingest_rates_by_engine(kEngines.size());
  for (size_t e = 0; e < kEngines.size(); ++e) {
    std::printf("%-24s %14s %10s\n",
                (std::string("ingest[") + kEngines[e] + "]").c_str(),
                "vectors/sec", "speedup");
    // "speedup" is thread scaling within this engine; the cross-engine
    // ratio is printed separately below.
    double engine_base = 0.0;
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      auto store = SketchStore::Make(StoreOptions(kEngines[e])).value();
      const auto start = std::chrono::steady_clock::now();
      const Status st = store.BuildAndInsertBatch(batch, &pool);
      const double secs = SecondsSince(start);
      if (!st.ok() || store.size() != corpus) {
        std::printf("ingest failed: %s\n", st.ToString().c_str());
        return 1;
      }
      const double rate = static_cast<double>(corpus) / secs;
      if (threads == 1) engine_base = rate;
      ingest_rates_by_engine[e].push_back({threads, rate});
      std::printf("%zu threads                %14.0f %9.2fx\n", threads, rate,
                  rate / engine_base);
    }
    std::printf("\n");
  }
  const std::vector<RatePoint>& ingest_rates = ingest_rates_by_engine[0];
  const double dart_vs_active =
      ingest_rates_by_engine[0][0].per_sec /
      ingest_rates_by_engine[1][0].per_sec;
  std::printf("single-thread dart vs active_index ingest: %.2fx\n\n",
              dart_vs_active);

  // --- queries --------------------------------------------------------------
  auto store = SketchStore::Make(StoreOptions()).value();
  {
    ThreadPool pool(4);
    if (!store.BuildAndInsertBatch(batch, &pool).ok()) return 1;
  }
  const size_t num_queries = 40 * scale;
  std::vector<SparseVector> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(CorpusVector(1000000 + q));
  }

  std::vector<RatePoint> query_rates;
  std::printf("\n%-10s %14s %10s\n", "top-10", "queries/sec", "speedup");
  double base_rate = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    QueryEngine engine(&store, &pool);
    const auto start = std::chrono::steady_clock::now();
    for (const SparseVector& q : queries) {
      if (!engine.TopK(q, 10).ok()) return 1;
    }
    const double secs = SecondsSince(start);
    const double rate = static_cast<double>(num_queries) / secs;
    if (threads == 1) base_rate = rate;
    query_rates.push_back({threads, rate});
    std::printf("%zu threads  %14.1f %9.2fx\n", threads, rate,
                rate / base_rate);
  }

  // --- pairwise estimate throughput, dispatched kernel vs scalar ------------
  const std::vector<EstimatePoint> estimate_points =
      MeasureEstimateThroughput();

  // --- machine-readable record ---------------------------------------------
  std::string json = "{\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "  \"bench\": \"service_throughput\",\n"
                "  \"family\": \"%s\",\n"
                "  \"hardware_concurrency\": %u,\n"
                "  \"kernel\": \"%s\",\n"
                "  \"scale\": %zu,\n"
                "  \"corpus\": %zu,\n"
                "  \"num_samples\": %zu,\n",
                kFamily, std::thread::hardware_concurrency(),
                simd::ActiveKernelName(), scale, corpus, kNumSamples);
  json += line;
  AppendRatesJson(&json, "ingest_vectors_per_sec", ingest_rates);
  json += ",\n";
  for (size_t e = 0; e < kEngines.size(); ++e) {
    AppendRatesJson(&json,
                    (std::string("ingest_vectors_per_sec_") + kEngines[e])
                        .c_str(),
                    ingest_rates_by_engine[e]);
    json += ",\n";
  }
  std::snprintf(line, sizeof(line),
                "  \"ingest_dart_vs_active_index_1thread\": %.3f,\n",
                dart_vs_active);
  json += line;
  AppendRatesJson(&json, "topk_queries_per_sec", query_rates);
  json += ",\n";
  AppendEstimateJson(&json, estimate_points);
  json += "\n}\n";
  const std::string json_path =
      bench::FlagValue(argc, argv, "--out", "BENCH_service.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "wb")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\ncould not write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
