// Ablation: the discretization parameter L (§5, "Choice of L").
//
// The paper observes that L must be at least n, ideally 100-1000× larger,
// because a unit vector's entries average 1/n in square and anything below
// 1/L rounds to zero; L costs no sketch space and only log(L) sketching
// time. This bench sweeps L from n/10 to 1000·n and reports the mean scaled
// error, which should be poor for L < n and flat beyond ~10·n.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/rounding.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "expt/ascii.h"
#include "expt/error.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

// Flips every entry positive: with full support overlap this makes the true
// inner product a substantial fraction of ||a||*||b||, so biases introduced
// by discretization are visible against it (signed values cancel to a
// near-zero truth that even a degenerate sketch estimates well).
SparseVector AbsValues(const SparseVector& v) {
  std::vector<Entry> entries = v.entries();
  for (Entry& e : entries) e.value = std::fabs(e.value);
  return SparseVector::MakeOrDie(v.dimension(), std::move(entries));
}

int Run(size_t scale) {
  // Dense squared mass + full overlap: every entry hovers near the 1/L
  // rounding floor, so discretization error is the dominant effect and the
  // L-dependence is visible through the sampling noise.
  const uint64_t n = 4000;
  SyntheticPairOptions gen;
  gen.dimension = n;
  gen.nnz = 2000;
  gen.overlap = 1.0;
  gen.outlier_fraction = 0.0;
  const size_t kPairs = 2 * scale;
  const int kSeeds = static_cast<int>(12 * scale);
  const size_t m = 256;

  std::vector<std::vector<std::string>> rows;
  for (double factor : {0.1, 0.5, 1.0, 4.0, 16.0, 100.0, 1000.0}) {
    const uint64_t L = static_cast<uint64_t>(factor * static_cast<double>(n));
    double err_sum = 0.0;
    double bias_sum = 0.0;  // deterministic discretization bias, no sampling
    size_t cells = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      gen.seed = 555 + p;
      auto pair = GenerateSyntheticPair(gen).value();
      pair.a = AbsValues(pair.a);
      pair.b = AbsValues(pair.b);
      const double truth = Dot(pair.a, pair.b);
      const double np = pair.a.Norm() * pair.b.Norm();
      // What the sketch estimates in expectation: <a~, b~>*||a||*||b|| for
      // the *rounded* unit vectors. Its gap from <a,b> is pure rounding.
      const auto ra = Round(pair.a, L).value().ToSparseVector();
      const auto rb = Round(pair.b, L).value().ToSparseVector();
      bias_sum += ScaledError(Dot(ra, rb) * np, truth, np);
      for (int seed = 0; seed < kSeeds; ++seed) {
        WmhOptions o;
        o.num_samples = m;
        o.seed = seed;
        o.L = L;
        const double est =
            EstimateWmhInnerProduct(SketchWmh(pair.a, o).value(),
                                    SketchWmh(pair.b, o).value())
                .value();
        err_sum += ScaledError(est, truth, np);
        ++cells;
      }
    }
    rows.push_back({FormatG(factor, 4), FormatG(static_cast<double>(L), 6),
                    FormatG(bias_sum / static_cast<double>(kPairs), 4),
                    FormatG(err_sum / static_cast<double>(cells), 4)});
  }

  std::printf("WMH error vs L (n = %llu, nnz = 2000, full overlap, m = %zu)\n"
              "'rounding bias' = scaled |<a~,b~>*||a||*||b|| - <a,b>|: the\n"
              "deterministic error floor discretization alone imposes.\n\n",
              static_cast<unsigned long long>(n), m);
  PrintAlignedTable(std::cout,
                    {"L/n", "L", "rounding bias", "mean sketch error"}, rows);
  std::printf("\nexpected: rounding bias large for L < n (entries round to\n"
              "zero) and vanishing for L >= ~10n, after which the sketch\n"
              "error flattens at its sampling floor — §5 'Choice of L'.\n");
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner("Ablation: discretization parameter L",
                          "WMH error as L sweeps from n/10 to 1000n", scale);
  return ipsketch::Run(scale);
}
