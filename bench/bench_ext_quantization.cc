// Extension experiment: quantized WMH sketches (the paper's §5 future-work
// note, "Standard quantization tricks could likely be used to reduce the
// size of numbers in all sketches").
//
// At equal *storage*, a quantized sketch affords more samples:
//   full     — 64-bit value + 32-bit hash       → m = ⌊(W−1)/1.5⌋
//   compact  — 32-bit value + 32-bit hash       → m = W−1
//   b-bit 16 — 32-bit value + 16-bit fingerprint → m = ⌊(W−1)·4/3⌋
//   b-bit 8  — 32-bit value +  8-bit fingerprint → m = ⌊(W−1)·8/5⌋
// This bench measures whether the extra samples buy accuracy on the §5.1
// synthetic workload.
//
// Besides the human-readable table, the bench writes
// BENCH_quantization.json to the working directory (mean scaled error per
// encoding per storage budget) so CI can track the accuracy trade-off
// across commits, like bench_service_throughput's BENCH_service.json.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "expt/ascii.h"
#include "expt/error.h"
#include "sketch/quantize.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

size_t SamplesFor(double words, double words_per_sample) {
  const double m = (words - 1.0) / words_per_sample;
  return m < 1.0 ? 1 : static_cast<size_t>(m);
}

/// One measured storage budget: mean scaled error per encoding.
struct BudgetRow {
  double words = 0.0;
  double err_full = 0.0;
  double err_compact = 0.0;
  double err_b16 = 0.0;
  double err_b8 = 0.0;
};

int Run(size_t scale) {
  SyntheticPairOptions gen;  // §5.1 defaults
  gen.overlap = 0.1;
  const size_t kPairs = 2 * scale;
  const int kSeeds = static_cast<int>(6 * scale);

  std::vector<BudgetRow> measured;
  std::vector<std::vector<std::string>> rows;
  for (double words : {100.0, 200.0, 400.0}) {
    double err_full = 0.0, err_compact = 0.0, err_b16 = 0.0, err_b8 = 0.0;
    size_t cells = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      gen.seed = 808 + p;
      const auto pair = GenerateSyntheticPair(gen).value();
      const double truth = Dot(pair.a, pair.b);
      const double np = pair.a.Norm() * pair.b.Norm();
      for (int seed = 0; seed < kSeeds; ++seed) {
        WmhOptions o;
        o.seed = seed;

        o.num_samples = SamplesFor(words, 1.5);
        const auto fa = SketchWmh(pair.a, o).value();
        const auto fb = SketchWmh(pair.b, o).value();
        err_full += ScaledError(EstimateWmhInnerProduct(fa, fb).value(),
                                truth, np);

        o.num_samples = SamplesFor(words, 1.0);
        const auto ca = CompactFromWmh(SketchWmh(pair.a, o).value());
        const auto cb = CompactFromWmh(SketchWmh(pair.b, o).value());
        err_compact += ScaledError(
            EstimateCompactWmhInnerProduct(ca, cb).value(), truth, np);

        o.num_samples = SamplesFor(words, 48.0 / 64.0);
        const auto ba16 =
            BbitFromWmh(SketchWmh(pair.a, o).value(), 16).value();
        const auto bb16 =
            BbitFromWmh(SketchWmh(pair.b, o).value(), 16).value();
        err_b16 += ScaledError(
            EstimateBbitWmhInnerProduct(ba16, bb16).value(), truth, np);

        o.num_samples = SamplesFor(words, 40.0 / 64.0);
        const auto ba8 = BbitFromWmh(SketchWmh(pair.a, o).value(), 8).value();
        const auto bb8 = BbitFromWmh(SketchWmh(pair.b, o).value(), 8).value();
        err_b8 += ScaledError(EstimateBbitWmhInnerProduct(ba8, bb8).value(),
                              truth, np);
        ++cells;
      }
    }
    const double c = static_cast<double>(cells);
    measured.push_back({words, err_full / c, err_compact / c, err_b16 / c,
                        err_b8 / c});
    rows.push_back({FormatG(words, 4), FormatG(err_full / c, 4),
                    FormatG(err_compact / c, 4), FormatG(err_b16 / c, 4),
                    FormatG(err_b8 / c, 4)});
  }

  std::printf("mean scaled error at equal storage, 10%% overlap synthetic\n"
              "(each column uses as many samples as its encoding affords)\n\n");
  PrintAlignedTable(std::cout,
                    {"storage (words)", "full (1.5w/m)", "compact (1w/m)",
                     "b=16 (0.75w/m)", "b=8 (0.625w/m)"},
                    rows);
  std::printf(
      "\nexpected: compact matches or beats full at equal storage (32-bit\n"
      "hashes lose nothing, extra samples help); b-bit variants trade\n"
      "spurious-match noise for even more samples and win at small budgets\n"
      "— the trend the paper anticipated from the quantized-JL literature.\n");

  // --- machine-readable record ---------------------------------------------
  std::string json = "{\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "  \"bench\": \"quantization\",\n"
                "  \"scale\": %zu,\n"
                "  \"pairs\": %zu,\n"
                "  \"seeds\": %d,\n"
                "  \"rows\": [",
                scale, kPairs, kSeeds);
  json += line;
  for (size_t i = 0; i < measured.size(); ++i) {
    const BudgetRow& r = measured[i];
    std::snprintf(line, sizeof(line),
                  "%s\n    {\"storage_words\": %.0f, \"err_full\": %.6g, "
                  "\"err_compact\": %.6g, \"err_b16\": %.6g, "
                  "\"err_b8\": %.6g}",
                  i == 0 ? "" : ",", r.words, r.err_full, r.err_compact,
                  r.err_b16, r.err_b8);
    json += line;
  }
  json += "\n  ]\n}\n";
  const char* json_path = "BENCH_quantization.json";
  if (std::FILE* f = std::fopen(json_path, "wb")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::printf("\ncould not write %s\n", json_path);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner("Extension: quantized WMH sketches",
                          "full vs 32-bit vs b-bit encodings at equal storage",
                          scale);
  return ipsketch::Run(scale);
}
