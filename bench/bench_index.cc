// Sublinear top-k through the LSH-banded index: banded-re-rank queries/sec
// against the exact scan over the same store, plus measured recall@10, per
// (bands, rows) point — the acceptance evidence for the src/index/
// subsystem (≥5x throughput at ≥50k sketches with recall@10 ≥ 0.9 at a
// documented (b, r)).
//
//   build/bench_index [scale] [--smoke] [--out PATH] [--seed N]
//
//   --smoke   small corpus (CI-sized, a few seconds); points are keyed by
//             corpus size so smoke and full results coexist in the JSON
//   --seed    base seed for data and sketches (default 7)
//
// The corpus mixes planted clusters with noise: kNumClusters query vectors
// each get kClusterSize near-duplicates (same support, jittered values)
// stored alongside random background vectors, so the exact top-10 for a
// query is its cluster — a recall target the banding filter must actually
// work to hit, unlike pure-noise corpora where top-10 is arbitrary.
//
// Writes an "index" section into the BENCH json (merged into an existing
// service record, before its "saturation" section if present);
// tools/check_bench_regression.py gates the banded-vs-exact speedup per
// (bands, rows, corpus) point and reports recall informationally.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "index/banded_index.h"
#include "service/metrics.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"

using namespace ipsketch;

namespace {

constexpr uint64_t kDimension = 8192;
constexpr size_t kNnz = 64;
constexpr size_t kNumSamples = 128;
constexpr char kFamily[] = "wmh";
constexpr size_t kTopK = 10;
constexpr size_t kNumClusters = 32;
constexpr size_t kClusterSize = 16;

// Base seed (--seed) — governs data and sketch randomness.
uint64_t g_seed = 7;

/// Member `member` of cluster `cluster`: the cluster's base support and
/// values with ±5% per-member value jitter, so weighted Jaccard within a
/// cluster stays high (~0.9) while noise pairs sit near zero. member 0 is
/// reserved for the query.
SparseVector ClusterVector(uint64_t cluster, uint64_t member) {
  const uint64_t base_seed = Mix64(g_seed ^ (cluster + 1));
  Xoshiro256StarStar base_rng(base_seed);
  Xoshiro256StarStar jitter_rng(Mix64(base_seed ^ (member + 1)));
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDimension, kNnz, base_seed)) {
    double v = base_rng.NextUnit() * 2.0 - 1.0;
    v *= 1.0 + 0.05 * (jitter_rng.NextUnit() * 2.0 - 1.0);
    entries.push_back({index, v});
  }
  return SparseVector::MakeOrDie(kDimension, std::move(entries));
}

/// Background vector `i`: independent random support and values.
SparseVector NoiseVector(uint64_t i) {
  const uint64_t seed = Mix64(g_seed ^ 0xB0B0B0B0u) + i;
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDimension, kNnz, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDimension, std::move(entries));
}

SketchStoreOptions StoreOptions() {
  SketchStoreOptions options;
  options.family = kFamily;
  options.sketch.dimension = kDimension;
  options.sketch.num_samples = kNumSamples;
  options.sketch.seed = g_seed;
  options.num_shards = 32;
  return options;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Sustained serial TopK rate over `queries`, cycling, for ≥ `window_secs`.
double MeasureTopkRate(const QueryEngine& engine,
                       const std::vector<SparseVector>& queries,
                       double window_secs) {
  size_t done = 0;
  const auto start = std::chrono::steady_clock::now();
  double secs = 0.0;
  do {
    if (!engine.TopK(queries[done % queries.size()], kTopK).ok()) {
      std::printf("TopK failed\n");
      std::exit(1);
    }
    ++done;
    secs = SecondsSince(start);
  } while (secs < window_secs);
  return static_cast<double>(done) / secs;
}

/// One measured (bands, rows) point.
struct IndexPoint {
  size_t bands = 0;
  size_t rows = 0;
  size_t corpus = 0;
  double exact_per_sec = 0.0;
  double banded_per_sec = 0.0;
  double recall = 0.0;
  double candidates_per_query = 0.0;
};

/// The `"index": {...}` fragment (no enclosing record braces, no trailing
/// comma).
std::string SectionJson(const std::vector<IndexPoint>& points) {
  std::string out = "  \"index\": {\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    \"family\": \"%s\",\n"
                "    \"num_samples\": %zu,\n"
                "    \"top_k\": %zu,\n"
                "    \"queries\": %zu,\n"
                "    \"points\": [",
                kFamily, kNumSamples, kTopK, kNumClusters);
  out += buf;
  for (size_t i = 0; i < points.size(); ++i) {
    const IndexPoint& p = points[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n      {\"bands\": %zu, \"rows\": %zu, \"corpus\": %zu, "
        "\"exact_per_sec\": %.1f, \"banded_per_sec\": %.1f, "
        "\"speedup\": %.2f,\n       \"recall_at_10\": %.4f, "
        "\"candidates_per_query\": %.1f}",
        i == 0 ? "" : ",", p.bands, p.rows, p.corpus, p.exact_per_sec,
        p.banded_per_sec,
        p.exact_per_sec > 0 ? p.banded_per_sec / p.exact_per_sec : 0.0,
        p.recall, p.candidates_per_query);
    out += buf;
  }
  out += "\n    ]\n  }";
  return out;
}

/// Merges `section` into the record at `path`: drops any previous "index"
/// section (brace-matched), then inserts before the "saturation" section if
/// one exists (bench_saturation truncates from that marker on re-runs, so
/// our section must sit above it), else before the record's closing brace.
/// Absent or unrecognizable records get a fresh standalone one.
bool WriteRecord(const std::string& path, const std::string& section) {
  std::string existing;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buffer[1 << 16];
    size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      existing.append(buffer, got);
    }
    std::fclose(f);
  }

  const std::string marker = ",\n  \"index\":";
  const size_t prev = existing.find(marker);
  if (prev != std::string::npos) {
    size_t open = existing.find('{', prev + marker.size());
    if (open != std::string::npos) {
      int depth = 0;
      size_t end = open;
      for (; end < existing.size(); ++end) {
        if (existing[end] == '{') ++depth;
        if (existing[end] == '}' && --depth == 0) break;
      }
      if (end < existing.size()) {
        existing.erase(prev, end + 1 - prev);
      }
    }
  }

  std::string out;
  const size_t saturation = existing.find(",\n  \"saturation\":");
  const size_t close = existing.rfind('}');
  if (saturation != std::string::npos) {
    out = existing.substr(0, saturation) + ",\n" + section +
          existing.substr(saturation);
  } else if (close != std::string::npos && existing[0] == '{') {
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += ",\n" + section + "\n}\n";
  } else {
    out = "{\n  \"bench\": \"index\",\n" + section + "\n}\n";
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(out.data(), 1, out.size(), f);
  return std::fclose(f) == 0;
}

uint64_t CandidatesCounter() {
  return metrics::MetricsRegistry::Global()
      .GetCounter("ipsketch_index_candidates_total", "")
      .Value();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t scale = bench::ScaleFromArgs(argc, argv);
  const bool smoke = bench::HasFlag(argc, argv, "--smoke");
  g_seed = bench::SeedFromArgs(argc, argv, g_seed);
  bench::Banner("index",
                "LSH-banded top-k vs exact scan: queries/sec and recall@10 "
                "per (bands, rows) over a planted-cluster corpus",
                scale);

  const size_t corpus = smoke ? 4000 : 50000 * scale;
  const double window_secs = smoke ? 0.2 : 1.0;
  const size_t planted = kNumClusters * kClusterSize;
  if (corpus < planted) {
    std::printf("corpus %zu smaller than the planted clusters (%zu)\n",
                corpus, planted);
    return 1;
  }

  auto store = SketchStore::Make(StoreOptions()).value();
  {
    std::vector<std::pair<uint64_t, SparseVector>> batch;
    batch.reserve(corpus);
    uint64_t id = 1;
    for (uint64_t c = 0; c < kNumClusters; ++c) {
      for (uint64_t j = 1; j <= kClusterSize; ++j) {
        batch.push_back({id++, ClusterVector(c, j)});
      }
    }
    for (uint64_t i = 0; id <= corpus; ++i) {
      batch.push_back({id++, NoiseVector(i)});
    }
    ThreadPool pool(4);
    if (!store.BuildAndInsertBatch(batch, &pool).ok()) {
      std::printf("ingest failed\n");
      return 1;
    }
  }
  std::vector<SparseVector> queries;
  for (uint64_t c = 0; c < kNumClusters; ++c) {
    queries.push_back(ClusterVector(c, 0));
  }
  std::printf("corpus: %zu vectors (%zu planted in %zu clusters), dim %llu, "
              "%zu nnz, family %s, m = %zu%s\n\n",
              corpus, planted, kNumClusters,
              static_cast<unsigned long long>(kDimension), kNnz, kFamily,
              kNumSamples, smoke ? "  [smoke]" : "");

  // The exact-scan reference rate: one serial engine, no index.
  QueryEngine exact(&store, /*pool=*/nullptr);
  MeasureTopkRate(exact, queries, window_secs);  // warm up
  const double exact_per_sec = MeasureTopkRate(exact, queries, window_secs);
  std::printf("exact scan: %.1f queries/sec\n\n", exact_per_sec);

  const std::vector<BandedLshParams> sweep = {
      {8, 8}, {16, 8}, {16, 4}, {32, 4}};
  std::vector<IndexPoint> points;
  std::printf("%-6s %-6s %14s %9s %12s %12s\n", "bands", "rows", "banded/s",
              "speedup", "recall@10", "cands/query");
  for (const BandedLshParams& params : sweep) {
    auto index = BandedIndex::MakeAttached(&store, params);
    if (!index.ok()) {
      std::printf("index build failed: %s\n",
                  index.status().ToString().c_str());
      return 1;
    }
    QueryEngine banded(&store, /*pool=*/nullptr, index.value().get(),
                       IndexPolicy::kBandedRerank);

    IndexPoint point;
    point.bands = params.bands;
    point.rows = params.rows;
    point.corpus = corpus;
    point.exact_per_sec = exact_per_sec;
    const uint64_t cands_before = CandidatesCounter();
    const auto start = std::chrono::steady_clock::now();
    size_t done = 0;
    double secs = 0.0;
    do {
      if (!banded.TopK(queries[done % queries.size()], kTopK).ok()) {
        std::printf("banded TopK failed\n");
        return 1;
      }
      ++done;
      secs = SecondsSince(start);
    } while (secs < window_secs);
    point.banded_per_sec = static_cast<double>(done) / secs;
    point.candidates_per_query =
        static_cast<double>(CandidatesCounter() - cands_before) /
        static_cast<double>(done);

    double recall_sum = 0.0;
    for (const SparseVector& query : queries) {
      auto recall = banded.ProbeRecall(query, kTopK);
      if (!recall.ok()) {
        std::printf("recall probe failed\n");
        return 1;
      }
      recall_sum += recall.value();
    }
    point.recall = recall_sum / static_cast<double>(queries.size());

    std::printf("%-6zu %-6zu %14.1f %8.1fx %12.4f %12.1f\n", point.bands,
                point.rows, point.banded_per_sec,
                point.banded_per_sec / exact_per_sec, point.recall,
                point.candidates_per_query);
    points.push_back(point);
  }

  const std::string json_path =
      bench::FlagValue(argc, argv, "--out", "BENCH_service.json");
  if (!WriteRecord(json_path, SectionJson(points))) {
    std::printf("\ncould not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (index section)\n", json_path.c_str());
  return 0;
}
