// Figure 4 reproduction: inner product estimation error vs sketch storage on
// the §5.1 synthetic workload, at overlap ratios 1%, 5%, 10%, 50%.
//
// Paper setup: n = 10000, 2000 non-zeros per vector, truncated-normal values
// with 10% outliers in [20, 30], errors scaled by ‖a‖·‖b‖, averaged over 10
// independent trials. Expected shape: WMH best at ≤10% overlap (MH/KMV also
// strong at 1%); linear sketches (JL/CS) catch up at 50%.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "data/synthetic.h"
#include "expt/ascii.h"
#include "expt/csv.h"
#include "expt/harness.h"

namespace ipsketch {
namespace {

int Run(size_t scale) {
  const std::vector<double> overlaps = {0.01, 0.05, 0.10, 0.50};
  SweepOptions sweep;
  sweep.storage_words = {64, 128, 192, 256, 320, 400, 512};
  sweep.trials = 2 * scale;      // paper: 10
  const size_t pairs_per_overlap = 2 * scale;
  sweep.seed = 20230508;

  for (size_t oi = 0; oi < overlaps.size(); ++oi) {
    SyntheticPairOptions gen;  // §5.1 defaults: n=10000, nnz=2000, outliers
    gen.overlap = overlaps[oi];
    gen.seed = 1000 + oi;
    auto raw = GenerateSyntheticPairs(gen, pairs_per_overlap);
    if (!raw.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   raw.status().ToString().c_str());
      return 1;
    }
    std::vector<EvalPair> pairs;
    for (const auto& p : raw.value()) pairs.push_back({p.a, p.b});

    auto methods = MakeStandardEvaluators();
    auto result = RunStorageSweep(methods, pairs, sweep);
    if (!result.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }

    std::printf("--- Figure 4(%c): %.0f%% overlap ---\n",
                static_cast<char>('a' + oi), overlaps[oi] * 100.0);
    std::printf("mean scaled error |est - <a,b>| / (||a||*||b||):\n");
    PrintSweepTable(std::cout, result.value());
    PrintSweepChart(std::cout, result.value());
    std::printf("\n");

    char path[64];
    std::snprintf(path, sizeof(path), "fig4_%c_overlap%02.0f.csv",
                  static_cast<char>('a' + oi), overlaps[oi] * 100.0);
    if (Status s = WriteSweepCsv(path, result.value()); s.ok()) {
      std::printf("(series written to %s)\n\n", path);
    }
  }
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner(
      "Figure 4 (synthetic data)",
      "Error vs storage at overlap 1/5/10/50%; methods JL, CS, MH, KMV, WMH",
      scale);
  return ipsketch::Run(scale);
}
