// Shared helpers for the plain (non-google-benchmark) bench binaries.

#ifndef IPSKETCH_BENCH_BENCH_COMMON_H_
#define IPSKETCH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ipsketch {
namespace bench {

/// Workload multiplier: `argv[1]` if present (≥ 1), else 1. All benches
/// default to a configuration that finishes in tens of seconds; pass 2-10
/// to approach the paper's full workload sizes.
inline size_t ScaleFromArgs(int argc, char** argv) {
  if (argc > 1) {
    const long v = std::strtol(argv[1], nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  return 1;
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment_id, const char* description,
                   size_t scale) {
  std::printf("=== %s ===\n%s\n(workload scale %zux; pass an integer arg to "
              "scale up)\n\n",
              experiment_id, description, scale);
}

}  // namespace bench
}  // namespace ipsketch

#endif  // IPSKETCH_BENCH_BENCH_COMMON_H_
