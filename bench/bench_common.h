// Shared helpers for the plain (non-google-benchmark) bench binaries.

#ifndef IPSKETCH_BENCH_BENCH_COMMON_H_
#define IPSKETCH_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ipsketch {
namespace bench {

/// True iff `--name` appears anywhere in argv.
inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) return true;
  }
  return false;
}

/// The operand following `--name` in argv, or `fallback` when the flag is
/// absent (or has no operand).
inline std::string FlagValue(int argc, char** argv, const char* name,
                             const std::string& fallback = "") {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == name) return argv[i + 1];
  }
  return fallback;
}

/// Workload multiplier: the first non-flag argument if present (≥ 1), else
/// 1. All benches default to a configuration that finishes in tens of
/// seconds; pass 2-10 to approach the paper's full workload sizes. `--flag
/// value` pairs (e.g. --out PATH) and bare `--flag` switches are skipped.
inline size_t ScaleFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      // Value-taking flags consume their operand too.
      if (arg == "--out" || arg == "--metrics-out" || arg == "--seed") ++i;
      continue;
    }
    const long v = std::strtol(arg.c_str(), nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
    return 1;
  }
  return 1;
}

/// The base RNG seed: `--seed N` if present, else `fallback`. Every bench
/// derives all of its synthetic data and sketch seeds from this one value,
/// so two runs with the same seed (and scale) see identical workloads and
/// `--seed` sweeps give cheap variance estimates.
inline uint64_t SeedFromArgs(int argc, char** argv, uint64_t fallback = 7) {
  const std::string v = FlagValue(argc, argv, "--seed");
  if (v.empty()) return fallback;
  return static_cast<uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment_id, const char* description,
                   size_t scale) {
  std::printf("=== %s ===\n%s\n(workload scale %zux; pass an integer arg to "
              "scale up)\n\n",
              experiment_id, description, scale);
}

}  // namespace bench
}  // namespace ipsketch

#endif  // IPSKETCH_BENCH_BENCH_COMMON_H_
