// Figure 6 reproduction: text similarity estimation on the 20-Newsgroups
// stand-in corpus.
//
// Paper setup: 700 documents, unigram+bigram TF-IDF vectors, cosine
// similarity (vectors unit-normalized), error vs storage 100..400, two
// panels: (a) all documents, (b) documents > 700 words. Real 20NG data is
// not available offline; data/newsgroups.cc generates a Zipf/topic-mixture
// corpus with matching statistics (see DESIGN.md substitutions).
//
// Expected shape: sampling sketches (MH/KMV/WMH) beat the linear sketches at
// every budget; on the long-document panel unweighted MH degrades while WMH
// stays strong.
//
// Documents are sketched once per (method, trial) and reused across all the
// pairs they participate in — the same amortization the paper's dataset
// search workflow relies on.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "data/newsgroups.h"
#include "expt/ascii.h"
#include "expt/csv.h"
#include "expt/harness.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace ipsketch {
namespace {

// Pairs up consecutive documents from `docs` (each document sketched for at
// most one pair, so the harness's per-pair Prepare never re-sketches).
std::vector<EvalPair> PairUp(const std::vector<SparseVector>& vectors,
                             const std::vector<size_t>& doc_ids,
                             size_t max_pairs) {
  std::vector<EvalPair> pairs;
  for (size_t i = 0; i + 1 < doc_ids.size() && pairs.size() < max_pairs;
       i += 2) {
    pairs.push_back({vectors[doc_ids[i]], vectors[doc_ids[i + 1]]});
  }
  return pairs;
}

int Run(size_t scale) {
  NewsgroupsOptions ng;  // 700 documents, as in the paper
  ng.seed = 20230508;
  auto corpus = GenerateNewsgroupsCorpus(ng);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }

  // TF-IDF with unigrams + bigrams, L2-normalized so ⟨a,b⟩ = cosine.
  FeatureOptions fo;
  std::vector<std::vector<uint64_t>> feature_docs;
  for (const auto& d : corpus.value()) {
    feature_docs.push_back(IdFeatures(d.token_ids, fo));
  }
  TfidfVectorizer vectorizer;
  auto vectors = vectorizer.FitTransform(feature_docs);
  if (!vectors.ok()) {
    std::fprintf(stderr, "vectorization failed: %s\n",
                 vectors.status().ToString().c_str());
    return 1;
  }

  std::vector<size_t> all_ids, long_ids;
  for (size_t i = 0; i < corpus.value().size(); ++i) {
    all_ids.push_back(i);
    if (corpus.value()[i].length() > 700) long_ids.push_back(i);
  }
  std::printf("corpus: %zu documents, %zu with > 700 words, vocabulary %zu\n\n",
              corpus.value().size(), long_ids.size(),
              vectorizer.vocabulary_size());

  SweepOptions sweep;
  sweep.storage_words = {100, 200, 300, 400};
  sweep.trials = 2 * scale;  // paper: 10
  sweep.seed = 31337;
  const size_t max_pairs = 60 * scale;

  struct Panel {
    const char* label;
    const std::vector<size_t>* ids;
    const char* csv;
  };
  const Panel panels[] = {
      {"Figure 6(a): all documents", &all_ids, "fig6_a_all_docs.csv"},
      {"Figure 6(b): documents > 700 words", &long_ids, "fig6_b_long_docs.csv"},
  };
  for (const Panel& panel : panels) {
    const auto pairs = PairUp(vectors.value(), *panel.ids, max_pairs);
    if (pairs.size() < 4) {
      std::fprintf(stderr, "not enough documents for panel %s\n", panel.label);
      return 1;
    }
    auto methods = MakeStandardEvaluators();
    auto result = RunStorageSweep(methods, pairs, sweep);
    if (!result.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("--- %s (%zu pairs) ---\n", panel.label, pairs.size());
    std::printf("mean scaled cosine-estimation error:\n");
    PrintSweepTable(std::cout, result.value());
    PrintSweepChart(std::cout, result.value());
    if (Status s = WriteSweepCsv(panel.csv, result.value()); s.ok()) {
      std::printf("(series written to %s)\n", panel.csv);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner(
      "Figure 6 (text similarity, 20-Newsgroups stand-in)",
      "TF-IDF cosine estimation error vs storage; all docs vs long docs",
      scale);
  return ipsketch::Run(scale);
}
