// Ablation: the weighted-union-size estimator in Algorithm 5.
//
// Line 2 of Algorithm 5 estimates M = Σ max(ã², b̃²) with a Flajolet–Martin
// estimator over the minimum hashes. Because the discretized vectors are
// unit-norm, M also has the closed form 2/(1 + J̄), with the weighted
// Jaccard J̄ estimable from the match rate (this is how the ICWS estimator
// works). This bench compares the two plug-ins inside the same WMH
// estimator across overlap regimes.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "expt/ascii.h"
#include "expt/error.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

int Run(size_t scale) {
  const size_t m = 256;
  const int kSeeds = static_cast<int>(10 * scale);
  const size_t kPairs = 2 * scale;

  std::vector<std::vector<std::string>> rows;
  for (double overlap : {0.01, 0.1, 0.5, 1.0}) {
    double err_fm = 0.0, err_jc = 0.0;
    size_t cells = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      SyntheticPairOptions gen;
      gen.overlap = overlap;
      gen.seed = 31000 + p;
      const auto pair = GenerateSyntheticPair(gen).value();
      const double truth = Dot(pair.a, pair.b);
      const double np = pair.a.Norm() * pair.b.Norm();
      for (int seed = 0; seed < kSeeds; ++seed) {
        WmhOptions o;
        o.num_samples = m;
        o.seed = seed;
        const auto sa = SketchWmh(pair.a, o).value();
        const auto sb = SketchWmh(pair.b, o).value();
        WmhEstimateOptions fm;  // default: Flajolet–Martin
        WmhEstimateOptions jc;
        jc.union_estimator = UnionEstimator::kJaccardClosedForm;
        err_fm += ScaledError(EstimateWmhInnerProduct(sa, sb, fm).value(),
                              truth, np);
        err_jc += ScaledError(EstimateWmhInnerProduct(sa, sb, jc).value(),
                              truth, np);
        ++cells;
      }
    }
    rows.push_back({FormatG(overlap, 3),
                    FormatG(err_fm / static_cast<double>(cells), 4),
                    FormatG(err_jc / static_cast<double>(cells), 4)});
  }

  std::printf("WMH mean scaled error by union-size estimator (m = %zu)\n\n",
              m);
  PrintAlignedTable(std::cout,
                    {"overlap", "Flajolet-Martin (Alg.5)",
                     "Jaccard closed form"},
                    rows);
  std::printf(
      "\nexpected: nearly identical at low overlap (few matches -> J-hat\n"
      "barely moves either estimator); the FM estimator is the one the\n"
      "paper analyzes and stays calibrated at all overlaps.\n");
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner("Ablation: weighted-union estimator",
                          "Algorithm 5's FM estimator vs the closed form",
                          scale);
  return ipsketch::Run(scale);
}
