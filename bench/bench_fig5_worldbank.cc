// Figure 5 reproduction: winning tables on the World-Bank-style corpus.
//
// Paper setup: 5000 column pairs from 56 datasets, unit-normalized, sketch
// storage 400 words; cells report mean(err_WMH − err_other), bucketed by
// overlap ratio (columns) and kurtosis (rows). Real World Bank data is not
// available offline; data/worldbank.cc generates a synthetic corpus with the
// same overlap/kurtosis spread (see DESIGN.md substitutions).
//
// Expected shape (paper §5.2): WMH beats JL except at overlap > 0.75 (where
// JL wins slightly); WMH beats MH most at high kurtosis.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "data/worldbank.h"
#include "expt/ascii.h"
#include "expt/harness.h"

namespace ipsketch {
namespace {

int Run(size_t scale) {
  WorldBankOptions wb;  // 56 datasets, as in the paper
  wb.seed = 424242;
  auto corpus = GenerateWorldBankCorpus(wb);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }

  const size_t num_pairs = 250 * scale;  // paper: 5000
  auto samples =
      SampleColumnPairs(corpus.value(), wb.key_universe, num_pairs, 7);
  if (!samples.ok()) {
    std::fprintf(stderr, "pair sampling failed: %s\n",
                 samples.status().ToString().c_str());
    return 1;
  }

  std::vector<EvalPair> pairs;
  for (const auto& s : samples.value()) pairs.push_back({s.a, s.b});

  auto methods = MakeStandardEvaluators();
  const double storage_words = 400;  // the paper's fixed size
  const size_t trials = 2 * scale;
  auto obs_result = ComputePairErrors(methods, pairs, storage_words, trials, 99);
  if (!obs_result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 obs_result.status().ToString().c_str());
    return 1;
  }
  std::vector<PairErrors> obs = std::move(obs_result).value();
  // Install the corpus covariates (overlap of supports, column kurtosis).
  for (size_t i = 0; i < obs.size(); ++i) {
    obs[i].overlap = samples.value()[i].overlap;
    obs[i].kurtosis = samples.value()[i].kurtosis;
  }

  const std::vector<double> overlap_edges = {0.25, 0.5, 0.75};
  const std::vector<double> kurtosis_edges = {3.0, 9.0, 50.0};

  std::printf("%zu column pairs, storage %.0f words, %zu trials/pair\n\n",
              pairs.size(), storage_words, trials);

  std::printf("--- Figure 5(a): WMH vs JL ---\n");
  const auto vs_jl = BuildWinningTable(obs, /*target=*/4, /*baseline=*/0,
                                       overlap_edges, kurtosis_edges);
  PrintWinningTable(std::cout, vs_jl, "WMH", "JL");

  std::printf("\n--- Figure 5(b): WMH vs MH ---\n");
  const auto vs_mh = BuildWinningTable(obs, /*target=*/4, /*baseline=*/2,
                                       overlap_edges, kurtosis_edges);
  PrintWinningTable(std::cout, vs_mh, "WMH", "MH");

  // Corpus marginals, for comparison with §1.2's reported statistics
  // (42% of pairs with Jaccard <= 0.1, 35% <= 0.05).
  size_t le10 = 0, le05 = 0;
  for (const auto& o : obs) {
    le10 += (o.overlap <= 0.1);
    le05 += (o.overlap <= 0.05);
  }
  std::printf("\ncorpus overlap marginals: %.0f%% of pairs <= 0.1, "
              "%.0f%% <= 0.05 (paper: 42%%, 35%%)\n",
              100.0 * le10 / obs.size(), 100.0 * le05 / obs.size());
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner(
      "Figure 5 (World Bank corpus, synthetic stand-in)",
      "Winning tables: mean(err_WMH - err_baseline) by overlap x kurtosis",
      scale);
  return ipsketch::Run(scale);
}
