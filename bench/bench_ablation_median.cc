// Ablation: the Theorem-2 median trick.
//
// Theorem 2's 1−δ guarantee concatenates t = O(log 1/δ) independent sketches
// and takes the median estimate. At *fixed total storage*, more repetitions
// mean fewer samples per repetition — a bias/tail trade-off. This bench
// holds total storage fixed and sweeps t, reporting the mean scaled error
// and the empirical tail probability P(err > 2·mean_of_best).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/median_boost.h"
#include "data/synthetic.h"
#include "expt/ascii.h"
#include "expt/error.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

int Run(size_t scale) {
  SyntheticPairOptions gen;
  gen.dimension = 8000;
  gen.nnz = 1200;
  gen.overlap = 0.5;
  gen.outlier_fraction = 0.0;  // keep per-repetition sketches informative
  gen.seed = 4242;
  const auto pair = GenerateSyntheticPair(gen).value();
  const double truth = Dot(pair.a, pair.b);
  const double np = pair.a.Norm() * pair.b.Norm();

  const size_t total_samples = 360;  // storage ≈ 540 words
  const int kTrials = static_cast<int>(40 * scale);

  struct Row {
    size_t reps;
    std::vector<double> errors;
  };
  std::vector<Row> data;
  for (size_t reps : {1u, 3u, 5u, 9u, 15u}) {
    Row row;
    row.reps = reps;
    for (int t = 0; t < kTrials; ++t) {
      MedianWmhOptions o;
      o.repetitions = reps;
      o.base.num_samples = total_samples / reps;
      o.base.seed = 9000 + t;
      const auto sa = SketchMedianWmh(pair.a, o).value();
      const auto sb = SketchMedianWmh(pair.b, o).value();
      const double est = EstimateMedianWmhInnerProduct(sa, sb).value();
      row.errors.push_back(ScaledError(est, truth, np));
    }
    data.push_back(std::move(row));
  }

  // Tail threshold: 2× the single-sketch (t = 1) mean error, so P(tail)
  // reads as "how often is this configuration in the t=1 failure regime".
  double t1_mean = 0.0;
  for (double e : data.front().errors) t1_mean += e;
  t1_mean /= data.front().errors.size();
  const double threshold = 2.0 * t1_mean;

  std::vector<std::vector<std::string>> rows;
  for (const Row& row : data) {
    double mean = 0.0, worst = 0.0;
    size_t tail = 0;
    for (double e : row.errors) {
      mean += e;
      worst = std::max(worst, e);
      tail += (e > threshold);
    }
    mean /= row.errors.size();
    rows.push_back({std::to_string(row.reps),
                    std::to_string(total_samples / row.reps),
                    FormatG(mean, 4), FormatG(worst, 4),
                    FormatG(static_cast<double>(tail) / row.errors.size(), 3)});
  }

  std::printf("fixed total %zu samples split across t repetitions, %d trials\n"
              "tail threshold = 2x best mean = %s\n\n",
              total_samples, kTrials, FormatG(threshold, 3).c_str());
  PrintAlignedTable(
      std::cout,
      {"repetitions t", "samples/rep", "mean err", "worst err", "P(tail)"},
      rows);
  std::printf("\nexpected: mean error grows mildly with t (fewer samples per\n"
              "repetition) while the worst-case/tail shrinks — the Chernoff\n"
              "trade the median trick buys.\n");
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner("Ablation: median-of-estimates boosting",
                          "Error tails vs repetition count at fixed storage",
                          scale);
  return ipsketch::Run(scale);
}
