// Ablation: the Algorithm-4 rounding rule.
//
// The paper's Round is deliberately non-standard (footnote 4): every entry
// rounds *down* except the largest-magnitude entry, which absorbs the whole
// deficit so the result is exactly unit norm. This bench compares, at small
// L where rounding matters:
//   paper      — Algorithm 4 (Round in core/rounding.cc);
//   floor      — round everything down, renormalizing only the sampling
//                weights (the result is sub-unit: estimator biased);
//   nearest    — round each squared entry to the nearest multiple of 1/L
//                (norm off in either direction).
// The variants are built by constructing DiscretizedVector objects directly
// and driving the same active-index engine and estimator.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/active_index.h"
#include "core/rounding.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "expt/ascii.h"
#include "expt/error.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

// Flips every entry positive: with full support overlap this makes the true
// inner product a substantial fraction of ||a||*||b||, so biases introduced
// by discretization are visible against it (signed values cancel to a
// near-zero truth that even a degenerate sketch estimates well).
SparseVector AbsValues(const SparseVector& v) {
  std::vector<Entry> entries = v.entries();
  for (Entry& e : entries) e.value = std::fabs(e.value);
  return SparseVector::MakeOrDie(v.dimension(), std::move(entries));
}

enum class RoundingRule { kPaper, kFloor, kNearest };

// Builds a discretized vector under the requested rule. For kPaper this
// defers to the library; the others construct the repetition counts by hand.
DiscretizedVector Discretize(const SparseVector& a, uint64_t L,
                             RoundingRule rule) {
  if (rule == RoundingRule::kPaper) return Round(a, L).value();
  const double norm = a.Norm();
  DiscretizedVector dv;
  dv.dimension = a.dimension();
  dv.L = L;
  dv.original_norm = norm;
  const double Ld = static_cast<double>(L);
  for (const Entry& e : a.entries()) {
    const double z = e.value / norm;
    const double scaled = z * z * Ld;
    const uint64_t reps =
        rule == RoundingRule::kFloor
            ? static_cast<uint64_t>(scaled)
            : static_cast<uint64_t>(std::llround(scaled));
    if (reps == 0) continue;
    dv.entries.push_back(
        {e.index, reps,
         std::copysign(std::sqrt(static_cast<double>(reps) / Ld), z)});
  }
  return dv;
}

WmhSketch SketchWithRule(const SparseVector& a, uint64_t L, size_t m,
                         uint64_t seed, RoundingRule rule) {
  const DiscretizedVector dv = Discretize(a, L, rule);
  WmhSketch sketch;
  sketch.seed = seed;
  sketch.L = L;
  sketch.dimension = a.dimension();
  sketch.norm = dv.original_norm;
  sketch.hashes.assign(m, 1.0);
  sketch.values.assign(m, 0.0);
  if (!dv.entries.empty()) {
    SketchWithActiveIndex(dv, seed, m, &sketch.hashes, &sketch.values);
  }
  return sketch;
}

int Run(size_t scale) {
  // Full overlap + moderate value variation: matches are plentiful, so the
  // estimator's accuracy directly reflects the quality of the discretized
  // weights — the regime where the rounding rule matters.
  SyntheticPairOptions gen;
  gen.dimension = 4000;
  gen.nnz = 2000;
  gen.overlap = 1.0;
  gen.outlier_fraction = 0.0;
  const size_t m = 256;
  const int kSeeds = static_cast<int>(8 * scale);
  const size_t kPairs = 2 * scale;

  std::vector<std::vector<std::string>> rows;
  for (double lfactor : {0.25, 0.5, 1.0, 2.0, 8.0, 64.0}) {
    const uint64_t L =
        static_cast<uint64_t>(lfactor * static_cast<double>(gen.dimension));
    double err[3] = {0.0, 0.0, 0.0};
    double mass[3] = {0.0, 0.0, 0.0};  // ||z~||^2: 1 iff unit norm preserved
    size_t cells = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      gen.seed = 777 + p;
      auto pair = GenerateSyntheticPair(gen).value();
      pair.a = AbsValues(pair.a);
      pair.b = AbsValues(pair.b);
      const double truth = Dot(pair.a, pair.b);
      const double np = pair.a.Norm() * pair.b.Norm();
      {
        int r = 0;
        for (RoundingRule rule : {RoundingRule::kPaper, RoundingRule::kFloor,
                                  RoundingRule::kNearest}) {
          const auto dv = Discretize(pair.a, L, rule);
          mass[r++] += dv.ToSparseVector().SquaredNorm();
        }
      }
      for (int seed = 0; seed < kSeeds; ++seed) {
        int r = 0;
        for (RoundingRule rule : {RoundingRule::kPaper, RoundingRule::kFloor,
                                  RoundingRule::kNearest}) {
          const auto sa = SketchWithRule(pair.a, L, m, seed, rule);
          const auto sb = SketchWithRule(pair.b, L, m, seed, rule);
          const double est = EstimateWmhInnerProduct(sa, sb).value();
          err[r++] += ScaledError(est, truth, np);
        }
        ++cells;
      }
    }
    rows.push_back({FormatG(lfactor, 4),
                    FormatG(err[0] / static_cast<double>(cells), 4),
                    FormatG(err[1] / static_cast<double>(cells), 4),
                    FormatG(err[2] / static_cast<double>(cells), 4),
                    FormatG(mass[1] / static_cast<double>(kPairs), 4)});
  }

  std::printf("mean scaled error by rounding rule (m = %zu, full overlap)\n\n",
              m);
  PrintAlignedTable(std::cout,
                    {"L/n", "paper (Alg.4)", "floor", "nearest",
                     "floor ||z~||^2"},
                    rows);
  std::printf(
      "\nreading the table: below the paper's valid regime (L < n) every\n"
      "rule is biased — floor/paper drop most small entries (mass column),\n"
      "while nearest keeps twice as many and wins on *average* error; the\n"
      "paper's rule exists for its worst-case guarantee (no 1/L additive\n"
      "term, exact unit norm), not average-case gains. At the recommended\n"
      "L >= ~8n all three rules coincide, which is the paper's point: pick\n"
      "L large and rounding becomes free.\n");
  return 0;
}

}  // namespace
}  // namespace ipsketch

int main(int argc, char** argv) {
  const size_t scale = ipsketch::bench::ScaleFromArgs(argc, argv);
  ipsketch::bench::Banner("Ablation: Algorithm-4 rounding rule",
                          "Paper's round-down-+-bump-max vs floor vs nearest",
                          scale);
  return ipsketch::Run(scale);
}
