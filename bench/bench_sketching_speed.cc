// Throughput benchmarks (google-benchmark) for §5's "Efficient Weighted
// Hashing": the dart engine's expected O(nnz + m·log m) vs the active-index
// engine's O(nnz·m·log L) vs the expanded reference's O(m·L), ICWS's
// O(nnz·m) (and its dart variant), and the baseline sketches.
//
// The BM_WmhIngest_* group is the per-engine ingest head-to-head at the
// service configuration (m = 128, L = 4096): kDart must beat kActiveIndex
// by ≥5× on this workload.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/icws.h"
#include "core/simd/dispatch.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/jl_sketch.h"
#include "sketch/kmv.h"
#include "sketch/minhash.h"
#include "sketch/quantize.h"
#include "vector/sparse_vector.h"

namespace ipsketch {
namespace {

SparseVector MakeVector(uint64_t dim, size_t nnz, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  entries.reserve(nnz);
  for (size_t i = 0; i < nnz; ++i) {
    double v = rng.NextGaussian();
    if (v == 0.0) v = 1.0;
    if (rng.NextUnit() < 0.1) v *= 25.0;
    entries.push_back({i * (dim / nnz), v});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

// --- Weighted MinHash engines ---------------------------------------------

void BM_WmhActiveIndex(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  const uint64_t L = static_cast<uint64_t>(state.range(1));
  const auto v = MakeVector(1 << 20, nnz, 1);
  WmhOptions o;
  o.num_samples = 64;
  o.L = L;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SketchWmh(v, o).value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * nnz *
                          o.num_samples);
}
// L sweeps far past what the reference engine can touch: runtime should
// grow only logarithmically along the L axis.
BENCHMARK(BM_WmhActiveIndex)
    ->Args({256, 1 << 12})
    ->Args({256, 1 << 18})
    ->Args({256, 1 << 24})
    ->Args({256, 1ll << 32})
    ->Args({1024, 1 << 18})
    ->Args({4096, 1 << 18});

void BM_WmhDart(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  const uint64_t L = static_cast<uint64_t>(state.range(1));
  const auto v = MakeVector(1 << 20, nnz, 1);
  WmhOptions o;
  o.num_samples = 64;
  o.L = L;
  o.engine = WmhEngine::kDart;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SketchWmh(v, o).value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * nnz *
                          o.num_samples);
}
// Runtime should be flat along BOTH axes beyond the O(nnz) rounding term:
// the dart count is m·(ln m + 4) regardless of L and of nnz.
BENCHMARK(BM_WmhDart)
    ->Args({256, 1 << 12})
    ->Args({256, 1 << 18})
    ->Args({256, 1 << 24})
    ->Args({256, 1ll << 32})
    ->Args({1024, 1 << 18})
    ->Args({4096, 1 << 18});

// The per-engine ingest head-to-head at the service configuration: one
// sketcher context reused across vectors, exactly like SketchStore batch
// ingest. items_processed counts vectors, so "items_per_second" is ingest
// vectors/sec for each engine.
void BM_WmhIngest(benchmark::State& state) {
  const size_t kBatch = 32;
  const size_t nnz = 256;
  std::vector<SparseVector> batch;
  for (size_t i = 0; i < kBatch; ++i) {
    batch.push_back(MakeVector(1 << 20, nnz, i + 1));
  }
  WmhOptions o;
  o.num_samples = 128;
  o.L = 4096;
  o.engine = static_cast<WmhEngine>(state.range(0));
  auto sketcher = WmhSketcher::Make(o).value();
  WmhSketch sketch;
  for (auto _ : state) {
    for (const SparseVector& v : batch) {
      if (!sketcher.Sketch(v, &sketch).ok()) {
        state.SkipWithError("sketch");
        return;
      }
      benchmark::DoNotOptimize(sketch);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
  state.SetLabel(o.engine == WmhEngine::kDart ? "dart" : "active_index");
}
BENCHMARK(BM_WmhIngest)
    ->Arg(static_cast<int>(WmhEngine::kActiveIndex))
    ->Arg(static_cast<int>(WmhEngine::kDart));

void BM_WmhExpandedReference(benchmark::State& state) {
  const uint64_t L = static_cast<uint64_t>(state.range(0));
  const auto v = MakeVector(1 << 20, 256, 1);
  WmhOptions o;
  o.num_samples = 64;
  o.L = L;
  o.engine = WmhEngine::kExpandedReference;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SketchWmh(v, o).value());
  }
  // O(m·L): each sample hashes every occupied slot (exactly L of them).
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          o.num_samples * static_cast<int64_t>(L));
}
BENCHMARK(BM_WmhExpandedReference)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_Icws(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  const auto v = MakeVector(1 << 20, nnz, 1);
  IcwsOptions o;
  o.num_samples = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SketchIcws(v, o).value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * nnz *
                          o.num_samples);
}
BENCHMARK(BM_Icws)->Arg(256)->Arg(1024)->Arg(4096);

void BM_IcwsDart(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  const auto v = MakeVector(1 << 20, nnz, 1);
  IcwsOptions o;
  o.num_samples = 64;
  o.engine = IcwsEngine::kDart;
  auto sketcher = IcwsSketcher::Make(o).value();
  IcwsSketch sketch;
  for (auto _ : state) {
    if (!sketcher.Sketch(v, &sketch).ok()) {
      state.SkipWithError("sketch");
      return;
    }
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * nnz *
                          o.num_samples);
}
BENCHMARK(BM_IcwsDart)->Arg(256)->Arg(1024)->Arg(4096);

// --- Baselines -------------------------------------------------------------

void BM_MinHash(benchmark::State& state) {
  const auto v = MakeVector(1 << 20, static_cast<size_t>(state.range(0)), 1);
  MhOptions o;
  o.num_samples = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SketchMh(v, o).value());
  }
}
BENCHMARK(BM_MinHash)->Arg(256)->Arg(4096);

void BM_Kmv(benchmark::State& state) {
  const auto v = MakeVector(1 << 20, static_cast<size_t>(state.range(0)), 1);
  KmvOptions o;
  o.k = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SketchKmv(v, o).value());
  }
}
BENCHMARK(BM_Kmv)->Arg(256)->Arg(4096);

void BM_Jl(benchmark::State& state) {
  const auto v = MakeVector(1 << 20, static_cast<size_t>(state.range(0)), 1);
  JlOptions o;
  o.num_rows = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SketchJl(v, o).value());
  }
}
BENCHMARK(BM_Jl)->Arg(256)->Arg(4096);

void BM_CountSketch(benchmark::State& state) {
  const auto v = MakeVector(1 << 20, static_cast<size_t>(state.range(0)), 1);
  CountSketchOptions o;
  o.total_counters = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SketchCount(v, o).value());
  }
}
BENCHMARK(BM_CountSketch)->Arg(256)->Arg(4096);

// --- Estimation ------------------------------------------------------------
//
// The BM_*Estimate benchmarks take (m, tier): tier 0 pins the scalar
// kernel, tier 1 measures the dispatched SIMD tier; the label records which
// kernel actually ran, so per-kernel estimate throughput lands in the
// bench output.

const simd::EstimateKernel* TierKernel(int64_t tier) {
  return tier == 0 ? &simd::ScalarKernel() : nullptr;
}

void BM_WmhEstimate(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const auto a = MakeVector(1 << 20, 1024, 1);
  const auto b = MakeVector(1 << 20, 1024, 2);
  WmhOptions o;
  o.num_samples = m;
  const auto sa = SketchWmh(a, o).value();
  const auto sb = SketchWmh(b, o).value();
  simd::SetActiveKernelForTesting(TierKernel(state.range(1)));
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateWmhInnerProduct(sa, sb).value());
  }
  simd::SetActiveKernelForTesting(nullptr);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_WmhEstimate)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

void BM_IcwsEstimate(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const auto a = MakeVector(1 << 20, 1024, 1);
  const auto b = MakeVector(1 << 20, 1024, 2);
  IcwsOptions o;
  o.num_samples = m;
  o.engine = IcwsEngine::kDart;
  const auto sa = SketchIcws(a, o).value();
  const auto sb = SketchIcws(b, o).value();
  simd::SetActiveKernelForTesting(TierKernel(state.range(1)));
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateIcwsInnerProduct(sa, sb).value());
  }
  simd::SetActiveKernelForTesting(nullptr);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_IcwsEstimate)->Args({128, 0})->Args({128, 1});

void BM_CompactWmhEstimate(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const auto a = MakeVector(1 << 20, 1024, 1);
  const auto b = MakeVector(1 << 20, 1024, 2);
  WmhOptions o;
  o.num_samples = m;
  const auto sa = CompactFromWmh(SketchWmh(a, o).value());
  const auto sb = CompactFromWmh(SketchWmh(b, o).value());
  simd::SetActiveKernelForTesting(TierKernel(state.range(1)));
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateCompactWmhInnerProduct(sa, sb).value());
  }
  simd::SetActiveKernelForTesting(nullptr);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_CompactWmhEstimate)->Args({128, 0})->Args({128, 1});

void BM_BbitWmhEstimate(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const auto a = MakeVector(1 << 20, 1024, 1);
  const auto b = MakeVector(1 << 20, 1024, 2);
  WmhOptions o;
  o.num_samples = m;
  const auto sa = BbitFromWmh(SketchWmh(a, o).value(), 16).value();
  const auto sb = BbitFromWmh(SketchWmh(b, o).value(), 16).value();
  simd::SetActiveKernelForTesting(TierKernel(state.range(1)));
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateBbitWmhInnerProduct(sa, sb).value());
  }
  simd::SetActiveKernelForTesting(nullptr);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_BbitWmhEstimate)->Args({128, 0})->Args({128, 1});

void BM_MhEstimate(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const auto a = MakeVector(1 << 20, 1024, 1);
  const auto b = MakeVector(1 << 20, 1024, 2);
  MhOptions o;
  o.num_samples = m;
  const auto sa = SketchMh(a, o).value();
  const auto sb = SketchMh(b, o).value();
  simd::SetActiveKernelForTesting(TierKernel(state.range(1)));
  state.SetLabel(simd::ActiveKernelName());
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateMhInnerProduct(sa, sb).value());
  }
  simd::SetActiveKernelForTesting(nullptr);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_MhEstimate)->Args({128, 0})->Args({128, 1});

}  // namespace
}  // namespace ipsketch
